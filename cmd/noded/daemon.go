package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/shard"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/pkg/api"
)

// Daemon is one live processor: the full reconfiguration stack with the
// MWMR shared-memory service — one vs/smr/regmem stack per shard,
// register names routed by the deterministic hash router — plus the
// HTTP client API speaking the repro/pkg/api contract. It is
// transport-generic — production runs it on tcp, the tests on inproc.
type Daemon struct {
	self      ids.ID
	tr        transport.Transport
	node      *core.Node
	mem       *shard.Map
	opTimeout time.Duration
}

// NewDaemon builds and wires the stack. peers is every node of the
// cluster (the connection universe); members is the initial
// configuration (empty = start as a joiner and acquire participation
// through the joining protocol); shards is the register-namespace
// partition count (raised to 1 if smaller); batch bounds the hot-path
// batching — payloads per datalink token cycle and commands per
// multicast round input (DESIGN.md §11; <= 1 disables batching, and the
// bound must be uniform across the cluster).
func NewDaemon(tr transport.Transport, self ids.ID, peers, members ids.Set, shards, batch, maxN int, opTimeout time.Duration) (*Daemon, error) {
	if opTimeout <= 0 {
		opTimeout = 30 * time.Second
	}
	// Coordinator-led delicate reconfiguration (Algorithm 4.6): the
	// view coordinator reconfigures when a configuration member is no
	// longer trusted. recMA's prediction path stays disabled, exactly
	// as the paper's modified Algorithm 3.2 prescribes for the vs
	// service; its majority-loss trigger remains active. Every shard
	// applies the same predicate against the shared configuration.
	mem := shard.New(self, shards, func(cur ids.Set, trusted ids.Set) bool {
		return cur.Diff(trusted).Size() > 0
	})
	if batch < 1 {
		batch = 1
	}
	mem.SetMaxBatch(batch)
	initial := recsa.NotParticipant()
	if !members.Empty() {
		initial = recsa.ConfigOf(members)
	}
	node, err := core.NewNode(tr, core.Params{
		Self:     self,
		N:        maxN,
		Initial:  initial,
		EvalConf: func(ids.Set, ids.Set) bool { return false },
		Apps:     mem.Apps(),
		Link:     datalink.Options{MaxBatch: batch},
	})
	if err != nil {
		return nil, err
	}
	d := &Daemon{self: self, tr: tr, node: node, mem: mem, opTimeout: opTimeout}
	others := peers.Remove(self)
	if !tr.Inspect(self, func() {
		node.ConnectAll(others)
		node.Detector.Bootstrap(others)
	}) {
		return nil, fmt.Errorf("noded: wiring node %v failed", self)
	}
	return d, nil
}

// Node exposes the underlying core node (tests).
func (d *Daemon) Node() *core.Node { return d.node }

// Mem exposes the sharded register map (tests).
func (d *Daemon) Mem() *shard.Map { return d.mem }

func (d *Daemon) status() (api.Status, bool) {
	var st api.Status
	ok := d.tr.Inspect(d.self, func() {
		st.ID = int(d.self)
		st.Ticks = d.node.Ticks()
		st.Participant = d.node.IsParticipant()
		st.NoReco = d.node.NoReco()
		cfg, has := d.node.Quorum()
		st.HasConfig = has
		st.Config = setInts(cfg)
		st.Trusted = setInts(d.node.Trusted())
		st.Participants = setInts(d.node.Participants())
		st.Serving = st.Participant && st.HasConfig
		st.Shards = make([]api.ShardStatus, d.mem.N())
		for i := range st.Shards {
			st.Shards[i] = d.shardStatusLocked(i, st.Participant && st.HasConfig)
			st.Serving = st.Serving && st.Shards[i].Serving
		}
		// Shard 0 mirrors into the legacy top-level fields.
		st.HasView = st.Shards[0].HasView
		st.ViewCoord = st.Shards[0].ViewCoord
		st.ViewMembers = st.Shards[0].ViewMembers
	})
	return st, ok
}

// shardStatusLocked reads one shard's status; the caller must already be
// inside the node's execution context.
func (d *Daemon) shardStatusLocked(i int, reconfigured bool) api.ShardStatus {
	out := api.ShardStatus{Shard: i}
	mem, err := d.mem.Mem(i)
	if err != nil {
		return out
	}
	if v, hasV := mem.VS().CurrentView(); hasV {
		out.HasView = true
		out.ViewCoord = int(v.Coordinator())
		out.ViewMembers = setInts(v.Set)
	}
	out.Registers = mem.Registers()
	out.Rounds = mem.VS().Metrics().RoundsApplied
	out.Serving = reconfigured && out.HasView
	return out
}

// waitHandle polls an operation handle from outside the node context
// until it completes or the deadline passes.
func (d *Daemon) waitHandle(h *regmem.Handle) bool {
	deadline := time.Now().Add(d.opTimeout)
	for time.Now().Before(deadline) {
		done := false
		if !d.tr.Inspect(d.self, func() { done = h.Done() }) {
			return false
		}
		if done {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// regName validates the register name of a request; empty (or
// all-whitespace) names are rejected with 400 before touching the stack.
func regName(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.PathValue("name")
	if strings.TrimSpace(name) == "" {
		api.WriteError(w, api.Errorf(api.CodeEmptyRegister, "empty register name"))
		return "", false
	}
	return name, true
}

// checkShard validates a client-supplied shard index (path value or
// query parameter), rejecting malformed or out-of-range values with
// 400.
func (d *Daemon) checkShard(w http.ResponseWriter, raw string) (int, bool) {
	i, err := strconv.Atoi(raw)
	if err != nil || i < 0 || i >= d.mem.N() {
		api.WriteError(w, api.Errorf(api.CodeBadShard,
			"bad shard %q (node hosts shards 0..%d)", raw, d.mem.N()-1))
		return 0, false
	}
	return i, true
}

// shardParam resolves the ?shard= query parameter (default 0).
func (d *Daemon) shardParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.URL.Query().Get("shard")
	if q == "" {
		return 0, true
	}
	return d.checkShard(w, q)
}

// nodeDown answers when the transport refuses to run an inspection —
// the node is closed or crashing.
func nodeDown(w http.ResponseWriter) {
	api.WriteError(w, api.Errorf(api.CodeUnavailable, "node is down"))
}

// Handler returns the client API: the /v1 contract of repro/pkg/api,
// every response application/json, every error the uniform envelope.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()

	// Liveness: served without entering the node's execution context,
	// so it answers even while the stack is wedged mid-reconfiguration.
	// Scripts and CI poll this (cheap, no view lock) before switching
	// to the full status wait.
	mux.HandleFunc("GET "+api.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, api.Health{OK: true, ID: int(d.self)})
	})

	mux.HandleFunc("GET "+api.PathStatus, func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.status()
		if !ok {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, st)
	})

	mux.HandleFunc("GET "+api.PathShards, func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.status()
		if !ok {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, st.Shards)
	})

	mux.HandleFunc("GET "+api.PathShards+"/{shard}", func(w http.ResponseWriter, r *http.Request) {
		i, ok := d.checkShard(w, r.PathValue("shard"))
		if !ok {
			return
		}
		st, ok := d.status()
		if !ok {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, st.Shards[i])
	})

	getReg := func(w http.ResponseWriter, r *http.Request) {
		name, ok := regName(w, r)
		if !ok {
			return
		}
		if r.URL.Query().Get("sync") != "" {
			var h *regmem.Handle
			var sh int
			if !d.tr.Inspect(d.self, func() { h, sh = d.mem.SyncRead(name) }) {
				nodeDown(w)
				return
			}
			if !d.waitHandle(h) {
				api.WriteError(w, api.Errorf(api.CodeTimeout,
					"sync read did not complete (retry)").WithShard(sh))
				return
			}
			var resp api.RegResponse
			if !d.tr.Inspect(d.self, func() {
				v, found := h.Value()
				resp = api.RegResponse{Name: name, Shard: sh, Value: v, Found: found, Done: true}
			}) {
				nodeDown(w)
				return
			}
			api.WriteJSON(w, resp)
			return
		}
		var resp api.RegResponse
		if !d.tr.Inspect(d.self, func() {
			v, found := d.mem.Read(name)
			resp = api.RegResponse{Name: name, Shard: shard.ShardFor(name, d.mem.N()), Value: v, Found: found, Done: true}
		}) {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, resp)
	}
	mux.HandleFunc("GET "+api.PathReg+"{name}", getReg)

	putReg := func(w http.ResponseWriter, r *http.Request) {
		name, ok := regName(w, r)
		if !ok {
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, api.MaxBody))
		if err != nil {
			api.WriteError(w, api.Errorf(api.CodeBadRequest, "read body: %v", err))
			return
		}
		value := string(body)
		var h *regmem.Handle
		var sh int
		if !d.tr.Inspect(d.self, func() { h, sh = d.mem.Write(name, value) }) {
			nodeDown(w)
			return
		}
		if !d.waitHandle(h) {
			api.WriteError(w, api.Errorf(api.CodeTimeout,
				"write did not complete (retry)").WithShard(sh))
			return
		}
		api.WriteJSON(w, api.RegResponse{Name: name, Shard: sh, Value: value, Done: true})
	}
	mux.HandleFunc("PUT "+api.PathReg+"{name}", putReg)
	mux.HandleFunc("POST "+api.PathReg+"{name}", putReg)
	// An empty {name} segment does not match the routes above; answer
	// it with an explicit 400 instead of a bare 404.
	emptyReg := func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, api.Errorf(api.CodeEmptyRegister, "empty register name"))
	}
	mux.HandleFunc("GET "+api.PathReg+"{$}", emptyReg)
	mux.HandleFunc("PUT "+api.PathReg+"{$}", emptyReg)
	mux.HandleFunc("POST "+api.PathReg+"{$}", emptyReg)

	mux.HandleFunc("POST "+api.PathSMRPropose, func(w http.ResponseWriter, r *http.Request) {
		sh, ok := d.shardParam(w, r)
		if !ok {
			return
		}
		var req api.ProposeRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, api.MaxBody)).Decode(&req); err != nil {
			api.WriteError(w, api.Errorf(api.CodeBadRequest, "decode: %v", err).WithShard(sh))
			return
		}
		accepted := false
		if !d.tr.Inspect(d.self, func() {
			mem, err := d.mem.Mem(sh)
			if err != nil {
				return
			}
			accepted = mem.SMR().Submit(smr.KVCmd{Op: smr.KVPut, Key: req.Key, Value: req.Value})
		}) {
			nodeDown(w)
			return
		}
		if !accepted {
			api.WriteError(w, api.Errorf(api.CodeOverload,
				"submission queue full (retry)").WithShard(sh))
			return
		}
		api.WriteJSON(w, api.ProposeResponse{Accepted: true, Shard: sh})
	})

	mux.HandleFunc("GET "+api.PathSMRLog, func(w http.ResponseWriter, r *http.Request) {
		sh, ok := d.shardParam(w, r)
		if !ok {
			return
		}
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		var entries []api.LogEntry
		if !d.tr.Inspect(d.self, func() {
			mem, err := d.mem.Mem(sh)
			if err != nil {
				return
			}
			log := mem.SMR().Log()
			if len(log) > n {
				log = log[len(log)-n:]
			}
			entries = make([]api.LogEntry, 0, len(log))
			for _, a := range log {
				entries = append(entries, api.LogEntry{
					View:   a.View.String(),
					Rnd:    a.Rnd,
					Member: int(a.Member),
					Cmd:    fmt.Sprint(a.Cmd),
				})
			}
		}) {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, entries)
	})

	return envelopeFallbacks(mux)
}

// envelopeFallbacks wraps the mux so its built-in plain-text 404/405
// responses (unknown route, known route with the wrong method) carry
// the uniform JSON envelope instead: the contract promises
// application/json on every response. Handler-written JSON errors pass
// through untouched — they set their Content-Type before WriteHeader.
func envelopeFallbacks(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

type envelopeWriter struct {
	http.ResponseWriter
	// rewrote: the plain-text error was replaced with an envelope and
	// the original body must be swallowed.
	rewrote bool
	wrote   bool
}

func (w *envelopeWriter) WriteHeader(code int) {
	w.wrote = true
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.Contains(w.Header().Get("Content-Type"), "json") {
		w.rewrote = true
		code2 := api.CodeNotFound
		if code == http.StatusMethodNotAllowed {
			code2 = api.CodeMethodNotAllowed
		}
		e := api.Errorf(code2, "%s", strings.ToLower(http.StatusText(code)))
		e.HTTPStatus = code
		api.WriteError(w.ResponseWriter, e)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	if w.rewrote {
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}
