package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/shard"
	"repro/internal/smr"
	"repro/internal/transport"
)

// Daemon is one live processor: the full reconfiguration stack with the
// MWMR shared-memory service — one vs/smr/regmem stack per shard,
// register names routed by the deterministic hash router — plus the
// HTTP client API. It is transport-generic — production runs it on tcp,
// the tests on inproc.
type Daemon struct {
	self      ids.ID
	tr        transport.Transport
	node      *core.Node
	mem       *shard.Map
	opTimeout time.Duration
}

// NewDaemon builds and wires the stack. peers is every node of the
// cluster (the connection universe); members is the initial
// configuration (empty = start as a joiner and acquire participation
// through the joining protocol); shards is the register-namespace
// partition count (raised to 1 if smaller).
func NewDaemon(tr transport.Transport, self ids.ID, peers, members ids.Set, shards, maxN int, opTimeout time.Duration) (*Daemon, error) {
	if opTimeout <= 0 {
		opTimeout = 30 * time.Second
	}
	// Coordinator-led delicate reconfiguration (Algorithm 4.6): the
	// view coordinator reconfigures when a configuration member is no
	// longer trusted. recMA's prediction path stays disabled, exactly
	// as the paper's modified Algorithm 3.2 prescribes for the vs
	// service; its majority-loss trigger remains active. Every shard
	// applies the same predicate against the shared configuration.
	mem := shard.New(self, shards, func(cur ids.Set, trusted ids.Set) bool {
		return cur.Diff(trusted).Size() > 0
	})
	initial := recsa.NotParticipant()
	if !members.Empty() {
		initial = recsa.ConfigOf(members)
	}
	node, err := core.NewNode(tr, core.Params{
		Self:     self,
		N:        maxN,
		Initial:  initial,
		EvalConf: func(ids.Set, ids.Set) bool { return false },
		Apps:     mem.Apps(),
	})
	if err != nil {
		return nil, err
	}
	d := &Daemon{self: self, tr: tr, node: node, mem: mem, opTimeout: opTimeout}
	others := peers.Remove(self)
	if !tr.Inspect(self, func() {
		node.ConnectAll(others)
		node.Detector.Bootstrap(others)
	}) {
		return nil, fmt.Errorf("noded: wiring node %v failed", self)
	}
	return d, nil
}

// Node exposes the underlying core node (tests).
func (d *Daemon) Node() *core.Node { return d.node }

// Mem exposes the sharded register map (tests).
func (d *Daemon) Mem() *shard.Map { return d.mem }

// Status is the introspection document served at /v1/status. The
// top-level view fields mirror shard 0 (the pre-sharding surface,
// which scripts and older clients grep); Shards carries every shard's
// service-layer state.
type Status struct {
	ID           int    `json:"id"`
	Ticks        uint64 `json:"ticks"`
	Participant  bool   `json:"participant"`
	NoReco       bool   `json:"noReco"`
	HasConfig    bool   `json:"hasConfig"`
	Config       []int  `json:"config"`
	Trusted      []int  `json:"trusted"`
	Participants []int  `json:"participants"`
	HasView      bool   `json:"hasView"`
	ViewCoord    int    `json:"viewCoordinator"`
	ViewMembers  []int  `json:"viewMembers"`
	// Serving means the node can make progress on client operations: it
	// participates, holds an agreed configuration, and every shard sits
	// in an installed view.
	Serving bool          `json:"serving"`
	Shards  []ShardStatus `json:"shards"`
}

// ShardStatus is one shard's service-layer state: the reconfiguration
// fields live on the singleton layer (Status), only the view-bearing
// service layer is per shard.
type ShardStatus struct {
	Shard       int    `json:"shard"`
	HasView     bool   `json:"hasView"`
	ViewCoord   int    `json:"viewCoordinator,omitempty"`
	ViewMembers []int  `json:"viewMembers,omitempty"`
	Registers   int    `json:"registers"`
	Rounds      uint64 `json:"rounds"`
	Serving     bool   `json:"serving"`
}

// RegResponse answers register reads and writes.
type RegResponse struct {
	Name  string `json:"name"`
	Shard int    `json:"shard"`
	Value string `json:"value,omitempty"`
	Found bool   `json:"found,omitempty"`
	Done  bool   `json:"done"`
}

// ProposeRequest submits a raw SMR command.
type ProposeRequest struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// LogEntry is one applied SMR command.
type LogEntry struct {
	View   string `json:"view"`
	Rnd    uint64 `json:"rnd"`
	Member int    `json:"member"`
	Cmd    string `json:"cmd"`
}

func (d *Daemon) status() (Status, bool) {
	var st Status
	ok := d.tr.Inspect(d.self, func() {
		st.ID = int(d.self)
		st.Ticks = d.node.Ticks()
		st.Participant = d.node.IsParticipant()
		st.NoReco = d.node.NoReco()
		cfg, has := d.node.Quorum()
		st.HasConfig = has
		st.Config = setInts(cfg)
		st.Trusted = setInts(d.node.Trusted())
		st.Participants = setInts(d.node.Participants())
		st.Serving = st.Participant && st.HasConfig
		st.Shards = make([]ShardStatus, d.mem.N())
		for i := range st.Shards {
			st.Shards[i] = d.shardStatusLocked(i, st.Participant && st.HasConfig)
			st.Serving = st.Serving && st.Shards[i].Serving
		}
		// Shard 0 mirrors into the legacy top-level fields.
		st.HasView = st.Shards[0].HasView
		st.ViewCoord = st.Shards[0].ViewCoord
		st.ViewMembers = st.Shards[0].ViewMembers
	})
	return st, ok
}

// shardStatusLocked reads one shard's status; the caller must already be
// inside the node's execution context.
func (d *Daemon) shardStatusLocked(i int, reconfigured bool) ShardStatus {
	out := ShardStatus{Shard: i}
	mem, err := d.mem.Mem(i)
	if err != nil {
		return out
	}
	if v, hasV := mem.VS().CurrentView(); hasV {
		out.HasView = true
		out.ViewCoord = int(v.Coordinator())
		out.ViewMembers = setInts(v.Set)
	}
	out.Registers = mem.Registers()
	out.Rounds = mem.VS().Metrics().RoundsApplied
	out.Serving = reconfigured && out.HasView
	return out
}

// waitHandle polls an operation handle from outside the node context
// until it completes or the deadline passes.
func (d *Daemon) waitHandle(h *regmem.Handle) bool {
	deadline := time.Now().Add(d.opTimeout)
	for time.Now().Before(deadline) {
		done := false
		if !d.tr.Inspect(d.self, func() { done = h.Done() }) {
			return false
		}
		if done {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// regName validates the register name of a request; empty (or
// all-whitespace) names are rejected with 400 before touching the stack.
func regName(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.PathValue("name")
	if strings.TrimSpace(name) == "" {
		httpErr(w, http.StatusBadRequest, "empty register name")
		return "", false
	}
	return name, true
}

// checkShard validates a client-supplied shard index (path value or
// query parameter), rejecting malformed or out-of-range values with
// 400.
func (d *Daemon) checkShard(w http.ResponseWriter, raw string) (int, bool) {
	i, err := strconv.Atoi(raw)
	if err != nil || i < 0 || i >= d.mem.N() {
		httpErr(w, http.StatusBadRequest,
			fmt.Sprintf("bad shard %q (node hosts shards 0..%d)", raw, d.mem.N()-1))
		return 0, false
	}
	return i, true
}

// shardParam resolves the ?shard= query parameter (default 0).
func (d *Daemon) shardParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.URL.Query().Get("shard")
	if q == "" {
		return 0, true
	}
	return d.checkShard(w, q)
}

// Handler returns the client API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.status()
		if !ok {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		writeJSON(w, st)
	})

	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.status()
		if !ok {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		writeJSON(w, st.Shards)
	})

	mux.HandleFunc("GET /v1/shards/{shard}", func(w http.ResponseWriter, r *http.Request) {
		i, ok := d.checkShard(w, r.PathValue("shard"))
		if !ok {
			return
		}
		st, ok := d.status()
		if !ok {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		writeJSON(w, st.Shards[i])
	})

	getReg := func(w http.ResponseWriter, r *http.Request) {
		name, ok := regName(w, r)
		if !ok {
			return
		}
		if r.URL.Query().Get("sync") != "" {
			var h *regmem.Handle
			var sh int
			if !d.tr.Inspect(d.self, func() { h, sh = d.mem.SyncRead(name) }) {
				httpErr(w, http.StatusServiceUnavailable, "node is down")
				return
			}
			if !d.waitHandle(h) {
				httpErr(w, http.StatusGatewayTimeout, "sync read did not complete (retry)")
				return
			}
			var resp RegResponse
			if !d.tr.Inspect(d.self, func() {
				v, found := h.Value()
				resp = RegResponse{Name: name, Shard: sh, Value: v, Found: found, Done: true}
			}) {
				httpErr(w, http.StatusServiceUnavailable, "node is down")
				return
			}
			writeJSON(w, resp)
			return
		}
		var resp RegResponse
		if !d.tr.Inspect(d.self, func() {
			v, found := d.mem.Read(name)
			resp = RegResponse{Name: name, Shard: shard.ShardFor(name, d.mem.N()), Value: v, Found: found, Done: true}
		}) {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		writeJSON(w, resp)
	}
	mux.HandleFunc("GET /v1/reg/{name}", getReg)

	putReg := func(w http.ResponseWriter, r *http.Request) {
		name, ok := regName(w, r)
		if !ok {
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			httpErr(w, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		value := string(body)
		var h *regmem.Handle
		var sh int
		if !d.tr.Inspect(d.self, func() { h, sh = d.mem.Write(name, value) }) {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		if !d.waitHandle(h) {
			httpErr(w, http.StatusGatewayTimeout, "write did not complete (retry)")
			return
		}
		writeJSON(w, RegResponse{Name: name, Shard: sh, Value: value, Done: true})
	}
	mux.HandleFunc("PUT /v1/reg/{name}", putReg)
	mux.HandleFunc("POST /v1/reg/{name}", putReg)
	// An empty {name} segment does not match the routes above; answer
	// it with an explicit 400 instead of a bare 404.
	emptyReg := func(w http.ResponseWriter, r *http.Request) {
		httpErr(w, http.StatusBadRequest, "empty register name")
	}
	mux.HandleFunc("GET /v1/reg/{$}", emptyReg)
	mux.HandleFunc("PUT /v1/reg/{$}", emptyReg)
	mux.HandleFunc("POST /v1/reg/{$}", emptyReg)

	mux.HandleFunc("POST /v1/smr/propose", func(w http.ResponseWriter, r *http.Request) {
		sh, ok := d.shardParam(w, r)
		if !ok {
			return
		}
		var req ProposeRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, "decode: "+err.Error())
			return
		}
		accepted := false
		if !d.tr.Inspect(d.self, func() {
			mem, err := d.mem.Mem(sh)
			if err != nil {
				return
			}
			accepted = mem.SMR().Submit(smr.KVCmd{Op: smr.KVPut, Key: req.Key, Value: req.Value})
		}) {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		if !accepted {
			httpErr(w, http.StatusTooManyRequests, "submission queue full (retry)")
			return
		}
		writeJSON(w, map[string]bool{"accepted": true})
	})

	mux.HandleFunc("GET /v1/smr/log", func(w http.ResponseWriter, r *http.Request) {
		sh, ok := d.shardParam(w, r)
		if !ok {
			return
		}
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		var entries []LogEntry
		if !d.tr.Inspect(d.self, func() {
			mem, err := d.mem.Mem(sh)
			if err != nil {
				return
			}
			log := mem.SMR().Log()
			if len(log) > n {
				log = log[len(log)-n:]
			}
			entries = make([]LogEntry, 0, len(log))
			for _, a := range log {
				entries = append(entries, LogEntry{
					View:   a.View.String(),
					Rnd:    a.Rnd,
					Member: int(a.Member),
					Cmd:    fmt.Sprint(a.Cmd),
				})
			}
		}) {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		writeJSON(w, entries)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
