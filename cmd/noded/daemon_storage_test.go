package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/pkg/api"
	"repro/pkg/client"
)

// storedDaemon boots a single-node daemon with the given storage
// config and returns it with a test server and client.
func storedDaemon(t *testing.T, seed int64, shards int, cfg DaemonConfig) (*Daemon, *client.Client) {
	t.Helper()
	tr := inproc.New(seed, transport.Options{Capacity: 64, TickEvery: time.Millisecond})
	t.Cleanup(func() { tr.Close() })
	one := ids.NewSet(1)
	cfg.Peers, cfg.Members, cfg.Shards = one, one, shards
	cfg.Batch, cfg.MaxN, cfg.OpTimeout = 1, 8, 10*time.Second
	d, err := NewDaemon(tr, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	c, err := client.New([]string{srv.URL}, client.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	return d, c
}

// TestStorageRoutesWithoutBackend: a diskless daemon still answers the
// node-level document (Attached=false) but refuses per-shard stats and
// snapshot triggers with storage_unavailable.
func TestStorageRoutesWithoutBackend(t *testing.T) {
	_, srv := soloDaemon(t, 2, time.Second)

	resp, data := doReq(t, http.MethodGet, srv.URL+api.PathStorage, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/storage: %d (%s)", resp.StatusCode, data)
	}
	var st api.StorageStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Attached || len(st.Shards) != 0 || st.ID != 1 {
		t.Fatalf("diskless storage doc %+v", st)
	}

	resp, data = doReq(t, http.MethodGet, srv.URL+api.StoragePath(0), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/storage/0: %d (%s), want 503", resp.StatusCode, data)
	}
	if e := api.DecodeError(resp.StatusCode, data); e.Code != api.CodeStorageUnavailable || e.Shard == nil || *e.Shard != 0 {
		t.Fatalf("per-shard envelope %+v", e)
	}

	resp, data = doReq(t, http.MethodPost, srv.URL+api.PathStorageSnapshot, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST snapshot: %d (%s), want 503", resp.StatusCode, data)
	}
	if e := api.DecodeError(resp.StatusCode, data); e.Code != api.CodeStorageUnavailable {
		t.Fatalf("snapshot envelope %+v", e)
	}

	// Out-of-range shard stays a 400 even without a backend.
	resp, data = doReq(t, http.MethodGet, srv.URL+api.StoragePath(9), "")
	if e := api.DecodeError(resp.StatusCode, data); resp.StatusCode != 400 || e.Code != api.CodeBadShard {
		t.Fatalf("bad shard: %d %+v", resp.StatusCode, e)
	}
}

// TestStorageRoutesLiveStats: a daemon with per-shard memory backends
// reports live WAL counters through GET /v1/storage after real writes,
// and POST /v1/storage/snapshot compacts on demand — the whole journey
// through pkg/client.
func TestStorageRoutesLiveStats(t *testing.T) {
	const shards = 2
	_, c := storedDaemon(t, 41, shards, DaemonConfig{
		Backends: func(int) (storage.Backend, error) { return storage.NewMemory(), nil },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.WaitServing(ctx, 0); err != nil {
		t.Fatalf("never served: %v", err)
	}

	// One write per shard; each must land in its own shard's WAL.
	for _, group := range shard.NamesPerShard(shards, 1) {
		if _, err := c.Write(ctx, group[0], "v"); err != nil {
			t.Fatalf("write %s: %v", group[0], err)
		}
	}

	st, err := c.StorageStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Attached || st.Kind != "memory" || len(st.Shards) != shards {
		t.Fatalf("storage doc %+v", st)
	}
	for _, sh := range st.Shards {
		if sh.Appended == 0 {
			t.Fatalf("shard %d WAL empty after a delivered write: %+v", sh.Shard, sh)
		}
	}

	// Per-shard route agrees with the node-level document.
	one, err := c.ShardStorage(ctx, 1)
	if err != nil || one.Shard != 1 || one.Kind != "memory" {
		t.Fatalf("shard storage: %+v, %v", one, err)
	}

	// Forced compaction truncates the logs and bumps the counters.
	snap, err := c.ForceSnapshot(ctx, -1)
	if err != nil {
		t.Fatalf("force snapshot: %v", err)
	}
	if len(snap.Snapshotted) != shards {
		t.Fatalf("snapshotted %v", snap.Snapshotted)
	}
	for _, sh := range snap.Shards {
		if sh.Snapshots == 0 || sh.WALRecords != 0 {
			t.Fatalf("post-snapshot counters %+v", sh)
		}
	}

	// Single-shard trigger, then an out-of-range one.
	if snap, err = c.ForceSnapshot(ctx, 1); err != nil || len(snap.Snapshotted) != 1 || snap.Snapshotted[0] != 1 {
		t.Fatalf("single-shard snapshot %+v, %v", snap, err)
	}
	if _, err = c.ForceSnapshot(ctx, 7); err == nil {
		t.Fatal("out-of-range snapshot accepted")
	}
}

// TestDiskDaemonRecoversAcrossRestart: a -data-dir daemon's registers
// survive a full stop/start cycle via local snapshot+WAL replay — the
// in-process version of the E2E kill test, covering the NewDaemon
// recovery wiring on both the write and the reboot side. The first
// stack is fully shut down before the second opens the directory: one
// Backend owns a shard directory at a time.
func TestDiskDaemonRecoversAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test")
	}
	dir := t.TempDir()
	const shards = 2
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	one := ids.NewSet(1)
	boot := func(seed int64) (*inproc.Net, *client.Client) {
		tr := inproc.New(seed, transport.Options{Capacity: 64, TickEvery: time.Millisecond})
		d, err := NewDaemon(tr, 1, DaemonConfig{
			Peers: one, Members: one, Shards: shards, Batch: 1, MaxN: 8,
			OpTimeout: 10 * time.Second,
			DataDir:   dir, Fsync: storage.FsyncAlways, SnapEvery: 4,
		})
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		srv := httptest.NewServer(d.Handler())
		t.Cleanup(srv.Close)
		c, err := client.New([]string{srv.URL}, client.WithShards(shards))
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		return tr, c
	}

	tr1, c := boot(43)
	if _, err := c.WaitServing(ctx, 0); err != nil {
		t.Fatalf("first boot never served: %v", err)
	}
	want := map[string]string{}
	for sh, group := range shard.NamesPerShard(shards, 3) {
		for j, name := range group {
			v := fmt.Sprintf("gen-%d-%d", sh, j)
			if _, err := c.Write(ctx, name, v); err != nil {
				t.Fatalf("write %s: %v", name, err)
			}
			want[name] = v
		}
	}
	st, err := c.StorageStatus(ctx)
	if err != nil || !st.Attached || st.Kind != "disk" {
		t.Fatalf("disk storage doc %+v, %v", st, err)
	}
	// Full stop: closing the transport halts ticking and the storage
	// file handles stop being written (fsync-always means everything
	// acked is already durable anyway).
	tr1.Close()

	// The data directory really holds per-shard stores.
	for i := 0; i < shards; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d", i), "wal.log")); err != nil {
			t.Fatalf("shard %d WAL missing: %v", i, err)
		}
	}

	tr2, c2 := boot(44)
	defer tr2.Close()
	if _, err := c2.WaitServing(ctx, 0); err != nil {
		t.Fatalf("rebooted daemon never served: %v", err)
	}
	for name, v := range want {
		got, err := c2.Read(ctx, name)
		if err != nil {
			t.Fatalf("post-restart read %s: %v", name, err)
		}
		if !got.Found || got.Value != v {
			t.Fatalf("register %s lost across restart: %+v, want %q", name, got, v)
		}
	}
	// Recovery happened from local files, and the document says so.
	st2, err := c2.StorageStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	recovered := false
	for _, sh := range st2.Shards {
		if sh.Recovered {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("no shard reports recovery after reboot: %+v", st2.Shards)
	}
}
