package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
)

// soloDaemon boots a single-node daemon (a 1-member cluster serves by
// itself) with the given shard count and returns a test server over its
// handler.
func soloDaemon(t *testing.T, shards int, opTimeout time.Duration) (*Daemon, *httptest.Server) {
	t.Helper()
	tr := inproc.New(31, transport.Options{Capacity: 64, TickEvery: time.Millisecond})
	t.Cleanup(func() { tr.Close() })
	one := ids.NewSet(1)
	d, err := NewDaemon(tr, 1, one, one, shards, 8, opTimeout)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func doReq(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestRegHandlersRejectEmptyNames: satellite hardening — register
// operations on empty or all-whitespace names answer 400, never reach
// the stack.
func TestRegHandlersRejectEmptyNames(t *testing.T) {
	_, srv := soloDaemon(t, 1, time.Second)
	cases := []struct{ method, path string }{
		{http.MethodPut, "/v1/reg/"},
		{http.MethodPost, "/v1/reg/"},
		{http.MethodGet, "/v1/reg/"},
		{http.MethodPut, "/v1/reg/%20"},
		{http.MethodGet, "/v1/reg/%20%09"},
	}
	for _, c := range cases {
		code, body := doReq(t, c.method, srv.URL+c.path, "v")
		if code != http.StatusBadRequest {
			t.Errorf("%s %s: status %d (%s), want 400", c.method, c.path, code, body)
		}
	}
}

// TestShardEndpointsRejectBadShard covers the bad-shard error paths of
// the per-shard status and SMR endpoints.
func TestShardEndpointsRejectBadShard(t *testing.T) {
	_, srv := soloDaemon(t, 2, time.Second)
	for _, path := range []string{
		"/v1/shards/7",
		"/v1/shards/-1",
		"/v1/shards/x",
		"/v1/smr/log?shard=2",
		"/v1/smr/log?shard=banana",
	} {
		code, body := doReq(t, http.MethodGet, srv.URL+path, "")
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d (%s), want 400", path, code, body)
		}
	}
	code, body := doReq(t, http.MethodPost, srv.URL+"/v1/smr/propose?shard=9",
		`{"key":"k","value":"v"}`)
	if code != http.StatusBadRequest {
		t.Errorf("propose bad shard: status %d (%s), want 400", code, body)
	}
}

// TestWriteTimesOutWithoutQuorum: a node whose initial configuration
// includes an unreachable majority cannot complete writes; the handler
// reports 504 after the operation deadline instead of hanging.
func TestWriteTimesOutWithoutQuorum(t *testing.T) {
	tr := inproc.New(32, transport.Options{Capacity: 64, TickEvery: time.Millisecond})
	defer tr.Close()
	// Universe {1,2}, only node 1 alive: the {1,2} configuration never
	// assembles a trusted majority, so no view forms and writes stall.
	both := ids.NewSet(1, 2)
	d, err := NewDaemon(tr, 1, both, both, 1, 8, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	code, body := doReq(t, http.MethodPut, srv.URL+"/v1/reg/stuck", "value")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("write without quorum: status %d (%s), want 504", code, body)
	}
	code, body = doReq(t, http.MethodGet, srv.URL+"/v1/reg/stuck?sync=1", "")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("sync read without quorum: status %d (%s), want 504", code, body)
	}
}

// TestShardedDaemonServesAcrossShards: a solo daemon with 4 shards
// reaches serving on every shard, routes writes by the shared hash
// router, and reports consistent per-shard status.
func TestShardedDaemonServesAcrossShards(t *testing.T) {
	const shards = 4
	_, srv := soloDaemon(t, shards, 10*time.Second)
	c := &client{base: srv.URL, http: srv.Client()}
	if err := c.wait(30*time.Second, 0); err != nil {
		t.Fatalf("sharded solo daemon never served: %v", err)
	}

	st, err := c.status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != shards {
		t.Fatalf("status reports %d shards, want %d", len(st.Shards), shards)
	}
	for _, sh := range st.Shards {
		if !sh.Serving || !sh.HasView {
			t.Fatalf("shard %d not serving after wait: %+v", sh.Shard, sh)
		}
	}

	// Writes land on the shard the router names, and reads agree.
	written := map[int]string{}
	for want, group := range shard.NamesPerShard(shards, 1) {
		name := group[0]
		resp, err := c.put(name, fmt.Sprintf("val%d", want))
		if err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
		if resp.Shard != want {
			t.Fatalf("put %s: handler reports shard %d, router says %d", name, resp.Shard, want)
		}
		written[want] = name
	}
	for sh, name := range written {
		got, err := c.get(name, true)
		if err != nil {
			t.Fatalf("sync-get %s: %v", name, err)
		}
		if !got.Found || got.Value != fmt.Sprintf("val%d", sh) || got.Shard != sh {
			t.Fatalf("sync-get %s = %+v, want val%d on shard %d", name, got, sh, sh)
		}
	}

	// Per-shard status shows the writes distributed: every shard holds
	// exactly one register.
	var perShard []ShardStatus
	if err := getJSON(srv.URL+"/v1/shards", &perShard); err != nil {
		t.Fatal(err)
	}
	for _, sh := range perShard {
		if sh.Registers != 1 {
			t.Errorf("shard %d holds %d registers, want 1", sh.Shard, sh.Registers)
		}
	}
	var one ShardStatus
	if err := getJSON(srv.URL+"/v1/shards/2", &one); err != nil {
		t.Fatal(err)
	}
	if one.Shard != 2 {
		t.Errorf("GET /v1/shards/2 returned shard %d", one.Shard)
	}
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
