package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/pkg/api"
	"repro/pkg/client"
)

// soloDaemon boots a single-node daemon (a 1-member cluster serves by
// itself) with the given shard count and returns a test server over its
// handler.
func soloDaemon(t *testing.T, shards int, opTimeout time.Duration) (*Daemon, *httptest.Server) {
	t.Helper()
	tr := inproc.New(31, transport.Options{Capacity: 64, TickEvery: time.Millisecond})
	t.Cleanup(func() { tr.Close() })
	one := ids.NewSet(1)
	d, err := NewDaemon(tr, 1, DaemonConfig{
		Peers: one, Members: one, Shards: shards, Batch: 1, MaxN: 8,
		OpTimeout: opTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

// soloClient builds a pkg/client over one test server.
func soloClient(t *testing.T, srv *httptest.Server, shards int) *client.Client {
	t.Helper()
	c, err := client.New([]string{srv.URL}, client.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func doReq(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestErrorEnvelopeContract: every error path of the API answers the
// uniform {code, error, shard?} envelope under Content-Type
// application/json — including the mux fallbacks (unknown route, wrong
// method), which the stdlib would otherwise serve as plain text.
func TestErrorEnvelopeContract(t *testing.T) {
	_, srv := soloDaemon(t, 2, time.Second)
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
		wantShard                *int
	}{
		{"bad shard path", http.MethodGet, "/v1/shards/7", "", 400, api.CodeBadShard, nil},
		{"negative shard", http.MethodGet, "/v1/shards/-1", "", 400, api.CodeBadShard, nil},
		{"non-numeric shard", http.MethodGet, "/v1/smr/log?shard=banana", "", 400, api.CodeBadShard, nil},
		{"propose bad shard", http.MethodPost, "/v1/smr/propose?shard=9", `{"key":"k"}`, 400, api.CodeBadShard, nil},
		{"empty register", http.MethodPut, "/v1/reg/", "v", 400, api.CodeEmptyRegister, nil},
		{"whitespace register", http.MethodGet, "/v1/reg/%20%09", "", 400, api.CodeEmptyRegister, nil},
		{"propose bad json", http.MethodPost, "/v1/smr/propose?shard=1", "not json", 400, api.CodeBadRequest, ptr(1)},
		{"unknown route", http.MethodGet, "/v1/nope", "", 404, api.CodeNotFound, nil},
		{"method not allowed", http.MethodDelete, "/v1/status", "", 405, api.CodeMethodNotAllowed, nil},
		{"propose wrong method", http.MethodGet, "/v1/smr/propose", "", 405, api.CodeMethodNotAllowed, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := doReq(t, c.method, srv.URL+c.path, c.body)
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, data, c.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			e := api.DecodeError(resp.StatusCode, data)
			if e.Code != c.wantCode {
				t.Fatalf("code %q (%s), want %q", e.Code, data, c.wantCode)
			}
			if e.Message == "" {
				t.Fatalf("empty error message in %s", data)
			}
			if c.wantShard != nil && (e.Shard == nil || *e.Shard != *c.wantShard) {
				t.Fatalf("shard %v, want %d", e.Shard, *c.wantShard)
			}
		})
	}
}

func ptr(i int) *int { return &i }

// TestEveryResponseIsJSON: 200s carry the contract Content-Type too.
func TestEveryResponseIsJSON(t *testing.T) {
	_, srv := soloDaemon(t, 1, time.Second)
	for _, path := range []string{"/v1/healthz", "/v1/status", "/v1/shards", "/v1/shards/0", "/v1/reg/x", "/v1/smr/log"} {
		resp, data := doReq(t, http.MethodGet, srv.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d (%s)", path, resp.StatusCode, data)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s: Content-Type %q", path, ct)
		}
	}
}

// TestHealthzIsCheapLiveness: healthz answers without entering the
// node's execution context and reports the node id.
func TestHealthzIsCheapLiveness(t *testing.T) {
	_, srv := soloDaemon(t, 1, time.Second)
	resp, data := doReq(t, http.MethodGet, srv.URL+"/v1/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d (%s)", resp.StatusCode, data)
	}
	var h api.Health
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.ID != 1 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestWriteTimesOutWithoutQuorum: a node whose initial configuration
// includes an unreachable majority cannot complete writes; the handler
// reports a timeout envelope after the operation deadline instead of
// hanging, naming the shard the operation was routed to.
func TestWriteTimesOutWithoutQuorum(t *testing.T) {
	tr := inproc.New(32, transport.Options{Capacity: 64, TickEvery: time.Millisecond})
	defer tr.Close()
	// Universe {1,2}, only node 1 alive: the {1,2} configuration never
	// assembles a trusted majority, so no view forms and writes stall.
	both := ids.NewSet(1, 2)
	d, err := NewDaemon(tr, 1, DaemonConfig{
		Peers: both, Members: both, Shards: 1, Batch: 1, MaxN: 8,
		OpTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, data := doReq(t, http.MethodPut, srv.URL+"/v1/reg/stuck", "value")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("write without quorum: status %d (%s), want 504", resp.StatusCode, data)
	}
	e := api.DecodeError(resp.StatusCode, data)
	if e.Code != api.CodeTimeout || e.Shard == nil || *e.Shard != 0 {
		t.Fatalf("write timeout envelope %+v (%s)", e, data)
	}
	resp, data = doReq(t, http.MethodGet, srv.URL+"/v1/reg/stuck?sync=1", "")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("sync read without quorum: status %d (%s), want 504", resp.StatusCode, data)
	}
	if e := api.DecodeError(resp.StatusCode, data); e.Code != api.CodeTimeout {
		t.Fatalf("sync-read timeout envelope %+v", e)
	}
	// Liveness keeps answering while operations stall.
	resp, _ = doReq(t, http.MethodGet, srv.URL+"/v1/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during stall: %d", resp.StatusCode)
	}
}

// TestShardedDaemonServesAcrossShards: a solo daemon with 4 shards
// reaches serving on every shard, routes writes by the shared hash
// router, and reports consistent per-shard status — all through the
// public pkg/client.
func TestShardedDaemonServesAcrossShards(t *testing.T) {
	const shards = 4
	_, srv := soloDaemon(t, shards, 10*time.Second)
	c := soloClient(t, srv, shards)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.WaitServing(ctx, 0); err != nil {
		t.Fatalf("sharded solo daemon never served: %v", err)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != shards {
		t.Fatalf("status reports %d shards, want %d", len(st.Shards), shards)
	}
	for _, sh := range st.Shards {
		if !sh.Serving || !sh.HasView {
			t.Fatalf("shard %d not serving after wait: %+v", sh.Shard, sh)
		}
	}

	// Writes land on the shard the router names — pkg/client verifies
	// the echoed shard against the same router — and reads agree.
	written := map[int]string{}
	for want, group := range shard.NamesPerShard(shards, 1) {
		name := group[0]
		resp, err := c.Write(ctx, name, fmt.Sprintf("val%d", want))
		if err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
		if resp.Shard != want {
			t.Fatalf("put %s: handler reports shard %d, router says %d", name, resp.Shard, want)
		}
		written[want] = name
	}
	for sh, name := range written {
		got, err := c.SyncRead(ctx, name)
		if err != nil {
			t.Fatalf("sync-get %s: %v", name, err)
		}
		if !got.Found || got.Value != fmt.Sprintf("val%d", sh) || got.Shard != sh {
			t.Fatalf("sync-get %s = %+v, want val%d on shard %d", name, got, sh, sh)
		}
	}

	// Per-shard status shows the writes distributed: every shard holds
	// exactly one register.
	perShard, err := c.ShardStatuses(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range perShard {
		if sh.Registers != 1 {
			t.Errorf("shard %d holds %d registers, want 1", sh.Shard, sh.Registers)
		}
	}
	one, err := c.ShardStatus(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if one.Shard != 2 {
		t.Errorf("GET /v1/shards/2 returned shard %d", one.Shard)
	}

	// Awkward register names survive the URL round trip — including
	// the dot segments HTTP path cleaning would otherwise swallow.
	for _, name := range []string{".", "..", "a/b", "sp ace"} {
		if _, err := c.Write(ctx, name, "odd"); err != nil {
			t.Fatalf("write %q: %v", name, err)
		}
		got, err := c.SyncRead(ctx, name)
		if err != nil || !got.Found || got.Value != "odd" || got.Name != name {
			t.Fatalf("round trip of %q = %+v, %v", name, got, err)
		}
	}
}
