package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// runClient implements the `noded client` subcommand: a thin HTTP
// wrapper so shell scripts can drive a live cluster.
func runClient(args []string) error {
	fs := flag.NewFlagSet("noded client", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8101", "daemon client API base URL")
		timeout = fs.Duration("timeout", 60*time.Second, "deadline for wait and per-request operations")
		exclude = fs.Int("exclude", 0, "wait: additionally require this id out of config and view")
		shardNo = fs.Int("shard", 0, "propose/log: the shard to address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &client{base: base, http: &http.Client{Timeout: *timeout}}
	sub := fs.Arg(0)
	rest := fs.Args()
	if len(rest) > 0 {
		rest = rest[1:]
	}

	switch sub {
	case "status":
		st, err := c.status()
		if err != nil {
			return err
		}
		return printJSON(st)
	case "wait":
		return c.wait(*timeout, *exclude)
	case "get", "sync-get":
		if len(rest) != 1 {
			return fmt.Errorf("usage: %s <register>", sub)
		}
		resp, err := c.get(rest[0], sub == "sync-get")
		if err != nil {
			return err
		}
		return printJSON(resp)
	case "put":
		if len(rest) != 2 {
			return fmt.Errorf("usage: put <register> <value>")
		}
		resp, err := c.put(rest[0], rest[1])
		if err != nil {
			return err
		}
		return printJSON(resp)
	case "shards":
		var shards []ShardStatus
		if err := c.do(http.MethodGet, "/v1/shards", nil, &shards); err != nil {
			return err
		}
		return printJSON(shards)
	case "propose":
		if len(rest) != 2 {
			return fmt.Errorf("usage: propose <key> <value>")
		}
		return c.propose(rest[0], rest[1], *shardNo)
	case "log":
		n := 10
		if len(rest) == 1 {
			v, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("usage: log [n]")
			}
			n = v
		}
		return c.log(n, *shardNo)
	case "":
		return fmt.Errorf("missing client subcommand (status|wait|get|sync-get|put|shards|propose|log)")
	default:
		return fmt.Errorf("unknown client subcommand %q", sub)
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) do(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func (c *client) status() (Status, error) {
	var st Status
	err := c.do(http.MethodGet, "/v1/status", nil, &st)
	return st, err
}

// wait polls status until the node serves (and, with exclude, until the
// configuration and view no longer contain the excluded id).
func (c *client) wait(timeout time.Duration, exclude int) error {
	deadline := time.Now().Add(timeout)
	var last Status
	var lastErr error
	for time.Now().Before(deadline) {
		st, err := c.status()
		lastErr = err
		if err == nil {
			last = st
			good := st.Serving && !contains(st.Config, exclude) && !contains(st.ViewMembers, exclude)
			for _, sh := range st.Shards {
				if contains(sh.ViewMembers, exclude) {
					good = false
				}
			}
			if good {
				return printJSON(st)
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	if lastErr != nil {
		return fmt.Errorf("wait timed out; last error: %w", lastErr)
	}
	return fmt.Errorf("wait timed out; last status: serving=%v config=%v view=%v",
		last.Serving, last.Config, last.ViewMembers)
}

func (c *client) get(name string, sync bool) (RegResponse, error) {
	path := "/v1/reg/" + name
	if sync {
		path += "?sync=1"
	}
	var resp RegResponse
	err := c.do(http.MethodGet, path, nil, &resp)
	return resp, err
}

func (c *client) put(name, value string) (RegResponse, error) {
	var resp RegResponse
	err := c.do(http.MethodPut, "/v1/reg/"+name, []byte(value), &resp)
	return resp, err
}

func (c *client) propose(key, value string, shard int) error {
	body, _ := json.Marshal(ProposeRequest{Key: key, Value: value})
	var resp map[string]bool
	if err := c.do(http.MethodPost, fmt.Sprintf("/v1/smr/propose?shard=%d", shard), body, &resp); err != nil {
		return err
	}
	return printJSON(resp)
}

func (c *client) log(n, shard int) error {
	var entries []LogEntry
	if err := c.do(http.MethodGet, fmt.Sprintf("/v1/smr/log?n=%d&shard=%d", n, shard), nil, &entries); err != nil {
		return err
	}
	return printJSON(entries)
}

func contains(xs []int, x int) bool {
	if x == 0 {
		return false
	}
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
