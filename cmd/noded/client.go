package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/pkg/client"
)

// runClient implements the `noded client` subcommand: a thin CLI over
// the repro/pkg/client cluster client, so shell scripts can drive a
// live cluster. -addr accepts a comma-separated endpoint list; with
// more than one, operations fail over across nodes.
func runClient(args []string) error {
	fs := flag.NewFlagSet("noded client", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8101", "daemon client API base URL(s), comma-separated for failover")
		timeout = fs.Duration("timeout", 60*time.Second, "deadline for wait and per-request operations")
		exclude = fs.Int("exclude", 0, "wait: additionally require this id out of config and view")
		shardNo = fs.Int("shard", 0, "propose/log: the shard to address")
		shards  = fs.Int("shards", 0, "cluster shard count for client-side routing (0 = unknown)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := client.New(strings.Split(*addr, ","),
		client.WithTimeout(*timeout), client.WithShards(*shards))
	if err != nil {
		return err
	}
	ctx := context.Background()
	sub := fs.Arg(0)
	rest := fs.Args()
	if len(rest) > 0 {
		rest = rest[1:]
	}

	switch sub {
	case "status":
		st, err := c.Status(ctx)
		if err != nil {
			return err
		}
		return printJSON(st)
	case "healthz":
		h, err := c.Healthz(ctx)
		if err != nil {
			return err
		}
		return printJSON(h)
	case "wait":
		wctx, cancel := context.WithTimeout(ctx, *timeout)
		defer cancel()
		st, err := c.WaitServing(wctx, *exclude)
		if err != nil {
			return fmt.Errorf("wait timed out: %w", err)
		}
		return printJSON(st)
	case "get", "sync-get":
		if len(rest) != 1 {
			return fmt.Errorf("usage: %s <register>", sub)
		}
		get := c.Read
		if sub == "sync-get" {
			get = c.SyncRead
		}
		resp, err := get(ctx, rest[0])
		if err != nil {
			return err
		}
		return printJSON(resp)
	case "put":
		if len(rest) != 2 {
			return fmt.Errorf("usage: put <register> <value>")
		}
		resp, err := c.Write(ctx, rest[0], rest[1])
		if err != nil {
			return err
		}
		return printJSON(resp)
	case "shards":
		shs, err := c.ShardStatuses(ctx)
		if err != nil {
			return err
		}
		return printJSON(shs)
	case "propose":
		if len(rest) != 2 {
			return fmt.Errorf("usage: propose <key> <value>")
		}
		resp, err := c.Propose(ctx, *shardNo, rest[0], rest[1])
		if err != nil {
			return err
		}
		return printJSON(resp)
	case "log":
		n := 10
		if len(rest) == 1 {
			v, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("usage: log [n]")
			}
			n = v
		}
		entries, err := c.Log(ctx, *shardNo, n)
		if err != nil {
			return err
		}
		return printJSON(entries)
	case "storage":
		st, err := c.StorageStatus(ctx)
		if err != nil {
			return err
		}
		return printJSON(st)
	case "snapshot":
		sh := -1 // all shards
		if len(rest) == 1 {
			v, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("usage: snapshot [shard]")
			}
			sh = v
		} else if len(rest) > 1 {
			return fmt.Errorf("usage: snapshot [shard]")
		}
		resp, err := c.ForceSnapshot(ctx, sh)
		if err != nil {
			return err
		}
		return printJSON(resp)
	case "":
		return fmt.Errorf("missing client subcommand (status|healthz|wait|get|sync-get|put|shards|propose|log|storage|snapshot)")
	default:
		return fmt.Errorf("unknown client subcommand %q", sub)
	}
}

func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
