package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/pkg/client"
)

// freePort grabs an ephemeral TCP port. The listener is closed before
// the port is handed out, so there is a theoretical reuse race; in
// practice the kernel does not recycle it within the test's lifetime.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestKillNineRecoversFromDisk is the crash-durability E2E: a real
// noded process with -data-dir takes writes, is SIGKILLed mid-write
// load (no shutdown path runs), and a fresh process over the same
// directory serves every acknowledged register again. The cluster is a
// single node, so there is no peer to take a state transfer from —
// recovery can only have come from the local snapshot + WAL replay.
func TestKillNineRecoversFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real noded process")
	}
	bin := filepath.Join(t.TempDir(), "noded")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building noded: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	trAddr, httpAddr := freePort(t), freePort(t)
	const shards = 2
	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-id", "1",
			"-peers", "1="+trAddr,
			"-http", httpAddr,
			"-shards", fmt.Sprint(shards),
			"-data-dir", dataDir,
			"-fsync", "always",
			"-snap-every", "8",
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting noded: %v", err)
		}
		return cmd
	}

	c, err := client.New([]string{httpAddr}, client.WithShards(shards), client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	proc := start()
	defer func() {
		if proc.Process != nil {
			proc.Process.Kill()
			proc.Wait()
		}
	}()
	if _, err := c.WaitServing(ctx, 0); err != nil {
		t.Fatalf("noded never served: %v", err)
	}

	// Acknowledged writes: whatever the server confirmed before the
	// kill must survive it (fsync=always).
	want := map[string]string{}
	for sh, group := range shard.NamesPerShard(shards, 2) {
		for j, name := range group {
			v := fmt.Sprintf("durable-%d-%d", sh, j)
			if _, err := c.Write(ctx, name, v); err != nil {
				t.Fatalf("write %s: %v", name, err)
			}
			want[name] = v
		}
	}

	// Background write load so the SIGKILL lands mid-traffic: some of
	// these writes die with the process, which is exactly the point —
	// unacknowledged work may vanish, acknowledged work may not.
	stop := make(chan struct{})
	var acked atomic.Int64
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			wctx, wcancel := context.WithTimeout(ctx, 2*time.Second)
			_, err := c.Write(wctx, "load", fmt.Sprintf("burst-%d", i))
			wcancel()
			if err != nil {
				return // the kill landed
			}
			acked.Store(int64(i))
		}
	}()
	time.Sleep(300 * time.Millisecond)

	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill: %v", err)
	}
	proc.Wait()
	close(stop)

	// Restart over the same directory and port; no peer exists, so the
	// registers can only come back via local replay.
	proc2 := start()
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	if _, err := c.WaitServing(ctx, 0); err != nil {
		t.Fatalf("restarted noded never served: %v", err)
	}

	for name, v := range want {
		got, err := c.SyncRead(ctx, name)
		if err != nil {
			t.Fatalf("post-restart sync-read %s: %v", name, err)
		}
		if !got.Found || got.Value != v {
			t.Fatalf("acknowledged register %s lost across SIGKILL: %+v, want %q", name, got, v)
		}
	}

	// The storage document reports a real recovery from local files.
	st, err := c.StorageStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Attached || st.Kind != "disk" {
		t.Fatalf("storage doc after restart %+v", st)
	}
	recovered := false
	for _, sh := range st.Shards {
		if sh.Recovered {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("no shard reports boot-time recovery: %+v", st.Shards)
	}
}
