package main

// Metrics wiring: one obs.Registry per daemon, every subsystem exported
// through it. Counters that already live in atomics (tcp, datalink, vs,
// shard router, node ticks) are exposed as lock-free views — the same
// instruments the packages' own Stats()/Metrics() snapshots read, so
// nothing is counted twice. State that only the node's execution
// context may touch (smr pending depth, storage backend counters) is
// refreshed by a gather hook doing a single transport Inspect per
// scrape. See DESIGN.md §13 for the metric name table.

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/datalink"
	"repro/internal/obs"
	"repro/internal/transport/tcp"
	"repro/pkg/api"
)

// tcpStats is the slice of *tcp.Net the metrics layer needs; the daemon
// stays transport-generic (inproc test transports simply expose no
// transport family).
type tcpStats interface{ Stats() tcp.Stats }

// storageMirror holds one shard's backend counters, copied out of the
// node context by the gather hook and read lock-free by counter views.
type storageMirror struct {
	appended  atomic.Uint64
	snapshots atomic.Uint64
}

// initMetrics builds the daemon's registry and registers every
// subsystem. Called once from NewDaemon, after storage is attached and
// the node exists.
func (d *Daemon) initMetrics() {
	reg := obs.NewRegistry()
	d.reg = reg

	reg.CounterFunc("repro_node_ticks_total",
		"Timer ticks executed by the node's step machine.",
		nil, d.node.Ticks)

	registerBuildInfo(reg)
	d.registerDatalink(reg)
	d.registerTCP(reg)
	d.registerShards(reg)
	d.registerJoin(reg)
	d.registerNodeStateHook(reg)
	d.httpReqs = newHTTPInstruments(reg)
}

// Registry returns the daemon's metrics registry (tests scrape it
// directly; the HTTP layer serves it on GET /metrics).
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// registerBuildInfo exports the toolchain and VCS identity of the
// running binary as a constant-1 gauge, prometheus build_info style, so
// dashboards can pivot every other series on what produced it.
func registerBuildInfo(reg *obs.Registry) {
	reg.GaugeFunc("repro_build_info",
		"Build identity of the running noded binary; value is always 1.",
		obs.Labels{"go_version": runtime.Version(), "vcs_rev": vcsRevision()},
		func() float64 { return 1 })
}

// vcsRevision digs the commit hash out of the embedded build info;
// "unknown" when built without VCS stamping (go run, test binaries).
func vcsRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "unknown"
}

func (d *Daemon) registerDatalink(reg *obs.Registry) {
	ep := d.node.Endpoint
	view := func(f func(datalink.Stats) uint64) func() uint64 {
		return func() uint64 { return f(ep.Stats()) }
	}
	reg.CounterFunc("repro_datalink_cleanings_total",
		"Link cleaning phases entered (bootstrap, corruption recovery, timeouts).",
		nil, view(func(s datalink.Stats) uint64 { return s.Cleanings }))
	reg.CounterFunc("repro_datalink_cycles_total",
		"Completed token cycles (one DATA/ACK exchange each).",
		nil, view(func(s datalink.Stats) uint64 { return s.CyclesDone }))
	reg.CounterFunc("repro_datalink_delivered_total",
		"Payloads handed to the upper layer.",
		nil, view(func(s datalink.Stats) uint64 { return s.Delivered }))
	reg.CounterFunc("repro_datalink_stale_ignored_total",
		"Packets ignored as stale (wrong session, overtaken sequence).",
		nil, view(func(s datalink.Stats) uint64 { return s.StaleIgnored }))
	reg.CounterFunc("repro_datalink_timeouts_total",
		"Progress timeouts that forced a link re-clean.",
		nil, view(func(s datalink.Stats) uint64 { return s.TimeoutsReset }))
	reg.CounterFunc("repro_datalink_batches_total",
		"Multi-payload DATA cycles completed by the sender.",
		nil, view(func(s datalink.Stats) uint64 { return s.Batches }))
	reg.CounterFunc("repro_datalink_batch_payloads_total",
		"Payloads delivered out of received batches.",
		nil, view(func(s datalink.Stats) uint64 { return s.BatchPayloads }))
	reg.CounterFunc("repro_datalink_evictions_total",
		"Queued payloads displaced by outbound-queue overflow.",
		nil, view(func(s datalink.Stats) uint64 { return s.QueueEvicted }))
	reg.GaugeFunc("repro_datalink_queue_depth",
		"Total outbound-queue depth across all links.",
		nil, func() float64 { return float64(ep.QueuedTotal()) })
	reg.GaugeFunc("repro_datalink_inflight_window",
		"In-flight DATA cycles across all links (pipelined window occupancy).",
		nil, func() float64 { return float64(ep.InflightTotal()) })
	// Cycle ack RTT, measured in endpoint ticks. The observer runs with
	// the datalink mutex held, so it must stay allocation-free: resolve
	// the histogram once here, only Observe (pure atomics) inside.
	ackHist := reg.Histogram("repro_datalink_ack_rtt_ticks",
		"Ticks from a DATA cycle's first transmission to its completing ack.",
		nil, []float64{1, 2, 4, 8, 16, 32, 64, 128})
	ep.SetAckRTTObserver(func(ticks uint64) { ackHist.Observe(float64(ticks)) })
}

func (d *Daemon) registerTCP(reg *obs.Registry) {
	tn, ok := d.tr.(tcpStats)
	if !ok {
		return
	}
	view := func(f func(tcp.Stats) uint64) func() uint64 {
		return func() uint64 { return f(tn.Stats()) }
	}
	reg.CounterFunc("repro_tcp_sent_total",
		"Messages handed to the TCP transport.",
		nil, view(func(s tcp.Stats) uint64 { return s.Sent }))
	reg.CounterFunc("repro_tcp_delivered_total",
		"Messages delivered to the local handler.",
		nil, view(func(s tcp.Stats) uint64 { return s.Delivered }))
	reg.CounterFunc("repro_tcp_dropped_total",
		"Messages dropped (injected loss, full queues, unreachable peers).",
		nil, view(func(s tcp.Stats) uint64 { return s.Dropped }))
	reg.CounterFunc("repro_tcp_duplicated_total",
		"Messages duplicated by injected duplication.",
		nil, view(func(s tcp.Stats) uint64 { return s.Duplicated }))
	reg.CounterFunc("repro_tcp_redials_total",
		"Peer connections re-established after failure.",
		nil, view(func(s tcp.Stats) uint64 { return s.Redials }))
	reg.CounterFunc("repro_tcp_decode_errors_total",
		"Inbound frames that failed to decode.",
		nil, view(func(s tcp.Stats) uint64 { return s.DecodeErrs }))
	reg.CounterFunc("repro_tcp_conn_writes_total",
		"Connection flushes performed by peer writers.",
		nil, view(func(s tcp.Stats) uint64 { return s.ConnWrites }))
	reg.CounterFunc("repro_tcp_frames_written_total",
		"Wire frames carried by connection flushes.",
		nil, view(func(s tcp.Stats) uint64 { return s.FramesWritten }))
	reg.GaugeFunc("repro_tcp_write_coalescing",
		"Achieved write coalescing factor: frames written per connection flush.",
		nil, func() float64 {
			s := tn.Stats()
			if s.ConnWrites == 0 {
				return 0
			}
			return float64(s.FramesWritten) / float64(s.ConnWrites)
		})
}

// registerShards exports the per-shard atomically-readable layers: the
// vs event counters, the shard router's op counters, and the snapshot
// duration histogram fed by the regmem observer hook.
func (d *Daemon) registerShards(reg *obs.Registry) {
	for i := 0; i < d.mem.N(); i++ {
		i := i
		lbl := obs.Labels{"shard": strconv.Itoa(i)}
		mem, err := d.mem.Mem(i)
		if err != nil {
			continue
		}
		mgr := mem.VS()
		type vsField func() uint64
		vsCounters := []struct {
			name, help string
			f          vsField
		}{
			{"repro_vs_rounds_applied_total", "Multicast rounds applied to the replica state machine.",
				func() uint64 { return mgr.Metrics().RoundsApplied }},
			{"repro_vs_views_installed_total", "Views installed (coordinator or follower side).",
				func() uint64 { return mgr.Metrics().ViewsInstalled }},
			{"repro_vs_proposals_total", "View proposals staged by this node as coordinator.",
				func() uint64 { return mgr.Metrics().Proposals }},
			{"repro_vs_suspended_ticks_total", "Ticks spent with the service suspended for reconfiguration.",
				func() uint64 { return mgr.Metrics().SuspendedTicks }},
			{"repro_vs_reconfig_requests_total", "Delicate reconfigurations requested by the coordinator.",
				func() uint64 { return mgr.Metrics().ReconfigRequests }},
			{"repro_vs_state_adoptions_total", "Replica-state adoptions (view changes, joins, recovery).",
				func() uint64 { return mgr.Metrics().Adoptions }},
			{"repro_vs_state_mismatches_total", "Adopted states differing from the locally recomputed Apply result.",
				func() uint64 { return mgr.Metrics().StateMismatches }},
			{"repro_vs_no_coordinator_ticks_total", "Participant ticks spent without an established coordinator.",
				func() uint64 { return mgr.Metrics().NoCoordinatorTicks }},
		}
		for _, c := range vsCounters {
			//repolint:allow metricname -- names come from the literal vsCounters table above; each row is allowlist-checked as a repro_ string literal
			reg.CounterFunc(c.name, c.help, lbl, c.f)
		}

		for _, op := range []struct {
			op string
			f  func() uint64
		}{
			{"write", func() uint64 { return d.mem.OpStats(i).Writes }},
			{"read", func() uint64 { return d.mem.OpStats(i).Reads }},
			{"sync_read", func() uint64 { return d.mem.OpStats(i).SyncReads }},
		} {
			reg.CounterFunc("repro_shard_ops_total",
				"Register operations routed to the shard, by kind.",
				obs.Labels{"shard": strconv.Itoa(i), "op": op.op}, op.f)
		}

		if d.stored {
			snapHist := reg.Histogram("repro_storage_snapshot_seconds",
				"Duration of snapshot saves.", lbl,
				[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5})
			snapFails := reg.Counter("repro_storage_snapshot_errors_total",
				"Snapshot saves that failed.", lbl)
			mem.ObserveSnapshots(func(dur time.Duration, err error) {
				snapHist.Observe(dur.Seconds())
				if err != nil {
					snapFails.Inc()
				}
			})
		}
	}
}

// registerJoin exports the joining mechanism's protocol counters
// (Algorithm 3.3). The Joiner's counters are atomics, so the views are
// lock-free like the vs ones; the participant gauge is node-context
// state and is refreshed by the gather hook below.
func (d *Daemon) registerJoin(reg *obs.Registry) {
	j := d.node.Joiner
	reg.CounterFunc("repro_join_requests_total",
		"Join requests issued by this node's joiner loop.",
		nil, func() uint64 { return j.Metrics().Requests })
	reg.CounterFunc("repro_join_responses_total",
		"Join requests answered by this node as a configuration member.",
		nil, func() uint64 { return j.Metrics().Responses })
	reg.CounterFunc("repro_join_joined_total",
		"Successful adoptions: majority pass collected and participation granted.",
		nil, func() uint64 { return j.Metrics().Joined })
	reg.CounterFunc("repro_join_denied_total",
		"Adoption attempts where recSA refused participation.",
		nil, func() uint64 { return j.Metrics().Denied })
}

// registerNodeStateHook exports the state only the node's execution
// context may read: smr pending depth, the participant flag, and the
// storage backend counters. One Inspect per scrape refreshes all of it.
func (d *Daemon) registerNodeStateHook(reg *obs.Registry) {
	n := d.mem.N()
	participant := reg.Gauge("repro_join_participant",
		"1 while recSA reports this node a participant, 0 while joining.", nil)
	pending := make([]*obs.Gauge, n)
	mirrors := make([]*storageMirror, n)
	walRecords := make([]*obs.Gauge, n)
	walBytes := make([]*obs.Gauge, n)
	snapBytes := make([]*obs.Gauge, n)
	failed := make([]*obs.Gauge, n)
	for i := 0; i < n; i++ {
		lbl := obs.Labels{"shard": strconv.Itoa(i)}
		pending[i] = reg.Gauge("repro_smr_pending_commands",
			"Commands submitted but not yet sent into a round.", lbl)
		if !d.stored {
			continue
		}
		m := &storageMirror{}
		mirrors[i] = m
		reg.CounterFunc("repro_storage_appends_total",
			"WAL records appended since attach.", lbl,
			m.appended.Load)
		reg.CounterFunc("repro_storage_snapshots_total",
			"Snapshots saved since attach.", lbl,
			m.snapshots.Load)
		walRecords[i] = reg.Gauge("repro_storage_wal_records",
			"Live WAL records past the newest snapshot.", lbl)
		walBytes[i] = reg.Gauge("repro_storage_wal_bytes",
			"Bytes in the live WAL tail.", lbl)
		snapBytes[i] = reg.Gauge("repro_storage_snapshot_bytes",
			"Size of the newest snapshot.", lbl)
		failed[i] = reg.Gauge("repro_storage_failed",
			"Storage failure latch: 1 after an unrecoverable backend error.", lbl)
	}
	reg.OnGather(func() {
		d.tr.Inspect(d.self, func() {
			if d.node.IsParticipant() {
				participant.Set(1)
			} else {
				participant.Set(0)
			}
			for i := 0; i < n; i++ {
				mem, err := d.mem.Mem(i)
				if err != nil {
					continue
				}
				pending[i].Set(float64(mem.SMR().PendingLen()))
				if mirrors[i] == nil {
					continue
				}
				st, ok := d.mem.StorageStats(i)
				if !ok {
					continue
				}
				mirrors[i].appended.Store(st.Appended)
				mirrors[i].snapshots.Store(st.Snapshots)
				walRecords[i].Set(float64(st.WALRecords))
				walBytes[i].Set(float64(st.WALBytes))
				snapBytes[i].Set(float64(st.SnapshotBytes))
				if st.Failed {
					failed[i].Set(1)
				} else {
					failed[i].Set(0)
				}
			}
		})
	})
}

// --- HTTP instrumentation ---

// httpInstruments records the client API's request counts and
// latencies. Series are resolved through the registry per request
// (bounded cardinality: normalized route × status code).
type httpInstruments struct {
	reg *obs.Registry
}

func newHTTPInstruments(reg *obs.Registry) *httpInstruments {
	return &httpInstruments{reg: reg}
}

// routeLabel normalizes a request path to a bounded route label; path
// parameters (register names, shard indices) never become label values.
func routeLabel(path string) string {
	switch {
	case path == api.PathHealthz:
		return "healthz"
	case path == api.PathStatus:
		return "status"
	case path == api.PathMetrics:
		return "metrics"
	case path == api.PathStorageSnapshot:
		return "storage_snapshot"
	case path == api.PathStorage || len(path) > len(api.PathStorage) && path[:len(api.PathStorage)+1] == api.PathStorage+"/":
		return "storage"
	case path == api.PathShards || len(path) > len(api.PathShards) && path[:len(api.PathShards)+1] == api.PathShards+"/":
		return "shards"
	case path == api.PathSMRPropose:
		return "smr_propose"
	case path == api.PathSMRLog:
		return "smr_log"
	case len(path) >= len(api.PathReg) && path[:len(api.PathReg)] == api.PathReg:
		return "registers"
	case len(path) >= len(api.PathPprof) && path[:len(api.PathPprof)] == api.PathPprof:
		return "pprof"
	default:
		return "other"
	}
}

// instrument wraps a handler with request counting and latency
// histograms.
func (hi *httpInstruments) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		route := routeLabel(r.URL.Path)
		hi.reg.Counter("repro_http_requests_total",
			"Client API requests, by normalized route and status code.",
			obs.Labels{"route": route, "code": fmt.Sprintf("%d", sw.code)}).Inc()
		hi.reg.Histogram("repro_http_request_seconds",
			"Client API request latency, by normalized route.",
			obs.Labels{"route": route}, obs.DefLatencyBuckets).
			Observe(time.Since(start).Seconds())
	})
}

// statusWriter captures the response status code for the request
// counter.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}
