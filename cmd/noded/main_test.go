package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/pkg/client"
)

func TestParsePeers(t *testing.T) {
	book, err := parsePeers("1=127.0.0.1:7001, 2=127.0.0.1:7002 ,3=h:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(book) != 3 || book[2] != "127.0.0.1:7002" {
		t.Fatalf("parsed %v", book)
	}
	for _, bad := range []string{"", "x=1:2", "1", "1=", "1=a:1,1=b:2"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestParseMembers(t *testing.T) {
	book := map[ids.ID]string{1: "a", 2: "b", 3: "c"}
	all, err := parseMembers("", book)
	if err != nil || !all.Equal(ids.NewSet(1, 2, 3)) {
		t.Fatalf("default members %v (%v)", all, err)
	}
	none, err := parseMembers("none", book)
	if err != nil || !none.Empty() {
		t.Fatalf("joiner members %v (%v)", none, err)
	}
	some, err := parseMembers("1, 3", book)
	if err != nil || !some.Equal(ids.NewSet(1, 3)) {
		t.Fatalf("subset members %v (%v)", some, err)
	}
	if _, err := parseMembers("1,x", book); err == nil {
		t.Error("bad member list accepted")
	}
}

// TestDaemonClusterEndToEnd boots a 3-node daemon cluster on the inproc
// backend and drives it through the HTTP client API end to end:
// bootstrap to serving, a register write/read, a node kill, delicate
// reconfiguration, and a write/read in the reconfigured cluster — the
// same journey scripts/noded_demo.sh takes over TCP.
func TestDaemonClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running live cluster test")
	}
	tr := inproc.New(11, transport.Options{
		Capacity:   256,
		MaxDelay:   500 * time.Microsecond,
		LossProb:   0.02,
		DupProb:    0.01,
		TickEvery:  time.Millisecond,
		TickJitter: 500 * time.Microsecond,
	})
	defer tr.Close()

	ctx := context.Background()
	all := ids.Range(1, 3)
	clients := make(map[ids.ID]*client.Client)
	for i := ids.ID(1); i <= 3; i++ {
		// batch 4: the E2E journey runs with hot-path batching on, so
		// the live write/sync-read path below exercises batched token
		// cycles and round inputs end to end.
		d, err := NewDaemon(tr, i, DaemonConfig{
			Peers: all, Members: all, Shards: 2, Batch: 4, MaxN: 16,
			OpTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(d.Handler())
		defer srv.Close()
		// One single-endpoint client per node: the waits below are
		// per-node, so no failover is wanted here.
		clients[i], err = client.New([]string{srv.URL}, client.WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
	}
	wait := func(i ids.ID, timeout time.Duration, exclude int) error {
		wctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		_, err := clients[i].WaitServing(wctx, exclude)
		return err
	}

	// Bootstrap: every node reaches serving state.
	for i := ids.ID(1); i <= 3; i++ {
		if err := wait(i, 60*time.Second, 0); err != nil {
			t.Fatalf("node %v never served: %v", i, err)
		}
	}

	// Write through one node, read through another (sync read flushes a
	// marker round, so it must observe the completed write).
	if _, err := clients[1].Write(ctx, "greeting", "hello"); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := clients[2].SyncRead(ctx, "greeting")
	if err != nil {
		t.Fatalf("sync-get: %v", err)
	}
	if !got.Found || got.Value != "hello" {
		t.Fatalf("sync-get = %+v, want hello", got)
	}

	// Propose a raw SMR command (addressed to shard 1 of 2).
	if resp, err := clients[3].Propose(ctx, 1, "audit", "1"); err != nil || !resp.Accepted || resp.Shard != 1 {
		t.Fatalf("propose: %+v, %v", resp, err)
	}

	// Kill a non-coordinator member; the survivors must drive a
	// delicate reconfiguration and serve again without the victim.
	st, err := clients[1].Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	victim := ids.ID(3)
	if int(victim) == st.ViewCoord {
		victim = 2
	}
	tr.Crash(victim)
	t.Logf("crashed %v (coordinator was p%d)", victim, st.ViewCoord)

	for i := ids.ID(1); i <= 3; i++ {
		if i == victim {
			continue
		}
		if err := wait(i, 120*time.Second, int(victim)); err != nil {
			t.Fatalf("node %v never reconfigured away from %v: %v", i, victim, err)
		}
	}

	// The service survived: old state is intact and new writes work.
	if _, err := clients[1].Write(ctx, "after", "reconfig"); err != nil {
		t.Fatalf("post-reconfig put: %v", err)
	}
	for _, i := range []ids.ID{1, 2, 3} {
		if i == victim {
			continue
		}
		got, err := clients[i].Read(ctx, "greeting")
		if err != nil {
			t.Fatalf("post-reconfig get on %v: %v", i, err)
		}
		if got.Value != "hello" {
			t.Fatalf("state lost across reconfiguration on %v: %+v", i, got)
		}
	}
}
