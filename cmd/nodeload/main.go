// Command nodeload is the client-side load generator for a noded
// cluster (ROADMAP: compare simnet-predicted E9/E11 latency with live
// TCP numbers). It drives many concurrent clients through the public
// repro/pkg/client — multi-endpoint failover, client-side shard
// routing — against the cluster's /v1 API and reports throughput plus
// p50/p95/p99 latency per operation class (write, sync-read), emitted
// through the experiment engine's table/CSV/JSON writers so live
// numbers land in the same formats as the simnet experiment tables.
//
// Usage:
//
//	nodeload -addrs http://127.0.0.1:8141,http://127.0.0.1:8142,... \
//	         [-clients 8] [-duration 5s] [-warmup 0s] [-ratio 0.5] \
//	         [-shards 1] [-keys 4] [-timeout 10s] [-wait 60s] [-seed 1] \
//	         [-format table|csv|json] [-out DIR]
//
// Churn mode (the chaos harness, DESIGN.md §16):
//
//	nodeload -churn -noded ./bin/noded [-nodes 3] [-churn-kills 1] \
//	         [-churn-join] [-join-timeout 60s] [-data-root DIR] \
//	         [-batch 1] [-window 1] ...workload flags as above
//
// With -churn, nodeload supervises its own cluster instead of taking
// -addrs: it boots -nodes noded processes (TCP transport, per-node
// -data-dir under -data-root, fsync always), runs the workload, and on
// a schedule derived only from -seed SIGKILLs victims mid-load,
// restarts them over the same data directory, and boots one fresh
// `-members none` joiner that must be adopted through the joining
// mechanism over real sockets. The report gains churn.* series
// (recovery time, join adoption time, max availability gap, lost acked
// writes) and the run exits nonzero if any acknowledged write is lost,
// the joiner is never adopted, or the schedule cannot complete.
//
// A SIGINT/SIGTERM mid-run does not discard the measurements: the
// workload stops, a partial report is still emitted with the
// run.truncated series set to 1, and nodeload exits nonzero.
//
// -ratio is the write fraction of the mixed workload (the rest are
// sync-reads, the linearizable read path). With -shards N the key set
// is built from shard.NamesPerShard so every shard receives traffic,
// and the shared client routes each key's requests to the shard's
// preferred endpoint — the client-side shard-aware connection pool.
// -warmup excludes the run's first ops from accounting: operations
// completing inside the warmup window (connection setup, first-request
// link cleaning) are executed but not measured, and throughput divides
// by the post-warmup elapsed time only.
//
// At end of run nodeload scrapes each endpoint's /metrics page,
// strict-parses it, and folds the summed server-side counters (shard
// ops, vs rounds, datalink cycles, tcp frames, storage appends, http
// requests) into the same report as server.* series, so one artifact
// correlates client-observed latency with cluster internals.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/experiments/engine"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/pkg/api"
	"repro/pkg/client"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	// An interrupted run (Ctrl-C, CI timeout's SIGTERM) must still emit
	// its report: the context unwinds the workers, and the partial
	// report goes out with run.truncated=1 before the nonzero exit.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if cfg.churn {
		if err := runChurn(ctx, cfg); err != nil {
			fatal(err)
		}
		return
	}
	c, err := client.New(cfg.addrs,
		client.WithShards(cfg.shards), client.WithTimeout(cfg.timeout))
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	if cfg.wait > 0 {
		wctx, cancel := context.WithTimeout(ctx, cfg.wait)
		err := waitCluster(wctx, cfg)
		cancel()
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "nodeload: %d clients × %v (+%v warmup) against %d endpoint(s), write ratio %.2f, %d shard(s), %d key(s)\n",
		cfg.clients, cfg.duration, cfg.warmup, len(cfg.addrs), cfg.ratio, cfg.shards, cfg.keys*cfg.shards)
	res := drive(ctx, c, cfg)
	truncated := ctx.Err() != nil
	srv := scrapeCluster(cfg)
	rep := buildReport(cfg, res, srv)
	addRow(rep, cfg, "run.truncated", "bool", b2f(truncated), !truncated, "")
	if err := emit(rep, cfg.format, cfg.out); err != nil {
		fatal(err)
	}
	if truncated {
		fatal(fmt.Errorf("interrupted: partial report emitted (truncated=true)"))
	}
	if res.write.ops+res.sread.ops == 0 {
		fatal(fmt.Errorf("no operation completed (write errs %d, sync-read errs %d, last: %v)",
			res.write.errs, res.sread.errs, res.lastErr))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nodeload:", err)
	os.Exit(1)
}

type config struct {
	addrs    []string
	clients  int
	duration time.Duration
	warmup   time.Duration
	ratio    float64
	shards   int
	keys     int
	timeout  time.Duration
	wait     time.Duration
	seed     int64
	format   string
	out      string

	// churn mode (chaos harness: nodeload supervises the cluster)
	churn       bool
	noded       string
	nodes       int
	churnKills  int
	churnJoin   bool
	joinTimeout time.Duration
	dataRoot    string
	batch       int
	window      int
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("nodeload", flag.ContinueOnError)
	var (
		addrs    = fs.String("addrs", "", "comma-separated daemon API base URLs (required; all cluster nodes for failover + shard routing)")
		clients  = fs.Int("clients", 8, "concurrent client workers")
		duration = fs.Duration("duration", 5*time.Second, "workload duration (measured window; warmup runs before it)")
		warmup   = fs.Duration("warmup", 0, "unmeasured lead-in: ops completing in this window are excluded from the report")
		ratio    = fs.Float64("ratio", 0.5, "write fraction of the mix (rest are sync-reads), 0..1")
		shards   = fs.Int("shards", 1, "cluster shard count (shard-aware key routing)")
		keys     = fs.Int("keys", 4, "distinct registers per shard")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-operation deadline")
		wait     = fs.Duration("wait", 60*time.Second, "wait for every endpoint to serve before loading (0 = skip)")
		seed     = fs.Int64("seed", 1, "workload random seed")
		format   = fs.String("format", "table", "output format: table, csv or json")
		out      = fs.String("out", "", "write results to files in DIR instead of stdout")

		churn    = fs.Bool("churn", false, "chaos mode: supervise a noded cluster and inject kill/restart + join churn mid-load (replaces -addrs)")
		noded    = fs.String("noded", "", "churn mode: path to the noded binary (required with -churn)")
		nodes    = fs.Int("nodes", 3, "churn mode: initial cluster size")
		kills    = fs.Int("churn-kills", 1, "churn mode: SIGKILL/restart cycles on the seeded schedule")
		join     = fs.Bool("churn-join", true, "churn mode: also start one fresh -members none joiner mid-run")
		joinTO   = fs.Duration("join-timeout", 60*time.Second, "churn mode: joiner's -join-timeout (it must be adopted within this)")
		dataRoot = fs.String("data-root", "", "churn mode: parent directory for per-node -data-dir (default: a temp dir, removed afterwards)")
		batch    = fs.Int("batch", 1, "churn mode: noded -batch (hot-path batch bound)")
		window   = fs.Int("window", 1, "churn mode: noded -window (pipelined datalink window)")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg := config{
		clients: *clients, duration: *duration, warmup: *warmup, ratio: *ratio,
		shards: *shards, keys: *keys, timeout: *timeout, wait: *wait,
		seed: *seed, format: *format, out: *out,
		churn: *churn, noded: *noded, nodes: *nodes, churnKills: *kills,
		churnJoin: *join, joinTimeout: *joinTO, dataRoot: *dataRoot,
		batch: *batch, window: *window,
	}
	for _, a := range strings.Split(*addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			cfg.addrs = append(cfg.addrs, a)
		}
	}
	if cfg.churn {
		if len(cfg.addrs) > 0 {
			return config{}, fmt.Errorf("-churn supervises its own cluster; -addrs must not be set")
		}
		if cfg.noded == "" {
			return config{}, fmt.Errorf("-churn requires -noded (path to the noded binary)")
		}
		if cfg.nodes < 2 {
			return config{}, fmt.Errorf("-nodes must be >= 2 (churn needs survivors)")
		}
		if cfg.churnKills < 0 {
			return config{}, fmt.Errorf("-churn-kills must be >= 0")
		}
		if cfg.batch < 1 || cfg.window < 1 {
			return config{}, fmt.Errorf("-batch and -window must be >= 1")
		}
	} else if len(cfg.addrs) == 0 {
		return config{}, fmt.Errorf("-addrs is required")
	}
	if cfg.clients < 1 {
		return config{}, fmt.Errorf("-clients must be >= 1")
	}
	if cfg.duration <= 0 {
		return config{}, fmt.Errorf("-duration must be positive")
	}
	if cfg.warmup < 0 {
		return config{}, fmt.Errorf("-warmup must be >= 0")
	}
	if cfg.ratio < 0 || cfg.ratio > 1 {
		return config{}, fmt.Errorf("-ratio must be in [0,1]")
	}
	if cfg.shards < 1 {
		return config{}, fmt.Errorf("-shards must be >= 1")
	}
	if cfg.keys < 1 {
		return config{}, fmt.Errorf("-keys must be >= 1")
	}
	switch cfg.format {
	case "table", "csv", "json":
	default:
		return config{}, fmt.Errorf("unknown format %q", cfg.format)
	}
	return cfg, nil
}

// waitCluster waits for every endpoint individually: load must only
// start once each node serves, not merely some node.
func waitCluster(ctx context.Context, cfg config) error {
	for _, a := range cfg.addrs {
		one, err := client.New([]string{a}, client.WithShards(cfg.shards))
		if err != nil {
			return err
		}
		_, err = one.WaitServing(ctx, 0)
		one.Close()
		if err != nil {
			return fmt.Errorf("endpoint %s never served: %w", a, err)
		}
	}
	return nil
}

// classStats accumulates one operation class's measurements.
type classStats struct {
	latMS []float64 // completed-operation latencies, milliseconds
	ops   int
	errs  int
}

func (s *classStats) merge(o classStats) {
	s.latMS = append(s.latMS, o.latMS...)
	s.ops += o.ops
	s.errs += o.errs
}

type result struct {
	write, sread classStats
	elapsed      time.Duration
	lastErr      error
}

// drive runs the mixed workload: cfg.clients workers sharing one
// cluster client, each picking a key (spread over every shard) and an
// operation (write with probability cfg.ratio, else sync-read) per
// iteration until the duration elapses. Operations completing inside
// the warmup window run but are excluded from the stats (connection
// setup, first-request link cleaning), and elapsed time — hence
// throughput — counts from the end of warmup only.
func drive(ctx context.Context, c *client.Client, cfg config) result {
	keys := make([]string, 0, cfg.shards*cfg.keys)
	for _, group := range shard.NamesPerShard(cfg.shards, cfg.keys) {
		keys = append(keys, group...)
	}
	var (
		mu  sync.Mutex
		res result
	)
	start := time.Now()
	measureStart := start.Add(cfg.warmup)
	deadline := measureStart.Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			var write, sread classStats
			var lastErr error
			for seq := 0; ctx.Err() == nil && time.Now().Before(deadline); seq++ {
				key := keys[rng.Intn(len(keys))]
				isWrite := rng.Float64() < cfg.ratio
				t0 := time.Now()
				var err error
				if isWrite {
					_, err = c.Write(ctx, key, fmt.Sprintf("w%d-%d", w, seq))
				} else {
					_, err = c.SyncRead(ctx, key)
				}
				done := time.Now()
				lat := done.Sub(t0)
				if done.Before(measureStart) {
					// Warmup op: executed for its side effects only. Failures
					// still surface through lastErr so an entirely-broken
					// cluster is reported, but they don't skew the counters.
					if err != nil {
						lastErr = err
					}
					continue
				}
				st := &sread
				if isWrite {
					st = &write
				}
				if err != nil {
					st.errs++
					lastErr = err
					continue
				}
				st.ops++
				st.latMS = append(st.latMS, float64(lat)/float64(time.Millisecond))
			}
			mu.Lock()
			res.write.merge(write)
			res.sread.merge(sread)
			if lastErr != nil {
				res.lastErr = lastErr
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.elapsed = time.Since(measureStart)
	return res
}

// percentile returns the p-th percentile (nearest-rank) of a sorted
// sample; 0 for an empty one.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// buildReport folds the measurements into an engine.Report so the
// existing emitters (table for humans, CSV/JSON for tooling and CI)
// render it; N is the client count, the report's natural x-axis.
func buildReport(cfg config, res result, srv *serverCounters) *engine.Report {
	secs := res.elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	note := fmt.Sprintf("%d clients, %v, ratio %.2f, %d shards, %d endpoints",
		cfg.clients, res.elapsed.Round(time.Millisecond), cfg.ratio, cfg.shards, len(cfg.addrs))
	rep := &engine.Report{Seed: cfg.seed, Repeats: 1}
	add := func(series, metric string, value float64, valid bool, rowNote string) {
		addRow(rep, cfg, series, metric, value, valid, rowNote)
	}
	class := func(name string, st classStats) {
		sort.Float64s(st.latMS)
		ok := st.ops > 0
		add(name+".ops", "count", float64(st.ops), ok, note)
		add(name+".throughput_ops_s", "ops/s", float64(st.ops)/secs, ok, "")
		add(name+".p50_ms", "ms", percentile(st.latMS, 50), ok, "")
		add(name+".p95_ms", "ms", percentile(st.latMS, 95), ok, "")
		add(name+".p99_ms", "ms", percentile(st.latMS, 99), ok, "")
		add(name+".errors", "count", float64(st.errs), true, "")
	}
	class("write", res.write)
	class("sync-read", res.sread)
	total := res.write.ops + res.sread.ops
	add("total.throughput_ops_s", "ops/s", float64(total)/secs, total > 0, "")
	// Server-side counters from the end-of-run /metrics scrape, summed
	// across endpoints, so one report correlates client-observed
	// latency with what the cluster internally did during the run.
	if srv != nil {
		srvNote := fmt.Sprintf("summed over %d/%d scraped endpoint(s)", srv.scraped, len(cfg.addrs))
		for _, m := range serverMetrics {
			add("server."+m.series, m.metric, srv.totals[m.family], srv.scraped > 0, srvNote)
			srvNote = ""
		}
	}
	return rep
}

// addRow appends one single-value series (a cell plus its summary line)
// to the report; churn mode and the truncation marker use it to extend
// the base workload report.
func addRow(rep *engine.Report, cfg config, series, metric string, value float64, valid bool, note string) {
	rep.Cells = append(rep.Cells, engine.Result{
		Cell:  engine.Cell{Experiment: "nodeload", Series: series, N: cfg.clients, Seed: cfg.seed},
		Value: value, Valid: valid, Note: note,
	})
	rep.Summary = append(rep.Summary, engine.Summary{
		Experiment: "nodeload", Series: series, Metric: metric,
		N: cfg.clients, Repeats: 1, Valid: b2i(valid),
		Mean: value, Min: value, Max: value,
	})
}

// serverMetrics are the /metrics families folded into the report.
var serverMetrics = []struct {
	series, metric, family string
}{
	{"shard_ops", "count", "repro_shard_ops_total"},
	{"vs_rounds", "count", "repro_vs_rounds_applied_total"},
	{"vs_view_changes", "count", "repro_vs_views_installed_total"},
	{"datalink_cycles", "count", "repro_datalink_cycles_total"},
	{"datalink_batches", "count", "repro_datalink_batches_total"},
	{"datalink_evictions", "count", "repro_datalink_evictions_total"},
	{"datalink_inflight", "gauge", "repro_datalink_inflight_window"},
	{"tcp_conn_writes", "count", "repro_tcp_conn_writes_total"},
	{"tcp_frames_written", "count", "repro_tcp_frames_written_total"},
	{"tcp_redials", "count", "repro_tcp_redials_total"},
	{"storage_appends", "count", "repro_storage_appends_total"},
	{"storage_snapshots", "count", "repro_storage_snapshots_total"},
	{"http_requests", "count", "repro_http_requests_total"},
}

// serverCounters aggregates the cluster's scraped counter families.
type serverCounters struct {
	totals  map[string]float64
	scraped int
}

// scrapeCluster pulls every endpoint's /metrics page once the load is
// done, strict-parses each, and sums the folded families. A node that
// fails to scrape (old binary, crashed during the run) is skipped with
// a warning — the client-side report must still come out.
func scrapeCluster(cfg config) *serverCounters {
	out := &serverCounters{totals: make(map[string]float64)}
	hc := &http.Client{Timeout: cfg.timeout}
	for _, a := range cfg.addrs {
		fams, err := scrapeOne(hc, a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nodeload: warning: scrape %s/metrics: %v (skipping)\n", a, err)
			continue
		}
		out.scraped++
		for _, m := range serverMetrics {
			out.totals[m.family] += obs.SumFamily(fams[m.family])
		}
	}
	return out
}

func scrapeOne(hc *http.Client, base string) (map[string]*obs.Family, error) {
	resp, err := hc.Get(strings.TrimRight(base, "/") + api.PathMetrics)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	fams, err := obs.Parse(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	return fams, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// emit mirrors benchtab's output contract: stdout by default, files
// under -out DIR (cells.csv + summary.csv, results.json, results.txt).
func emit(rep *engine.Report, format, dir string) error {
	if dir == "" {
		switch format {
		case "csv":
			if err := engine.WriteCellsCSV(os.Stdout, rep); err != nil {
				return err
			}
			fmt.Println()
			return engine.WriteSummaryCSV(os.Stdout, rep)
		case "json":
			return engine.WriteJSON(os.Stdout, rep)
		default:
			return engine.WriteTable(os.Stdout, rep)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer, *engine.Report) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", filepath.Join(dir, name))
		return nil
	}
	switch format {
	case "csv":
		if err := write("cells.csv", engine.WriteCellsCSV); err != nil {
			return err
		}
		return write("summary.csv", engine.WriteSummaryCSV)
	case "json":
		return write("results.json", engine.WriteJSON)
	default:
		return write("results.txt", engine.WriteTable)
	}
}
