package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/shard"
	"repro/pkg/client"
)

// Churn mode: nodeload owns the cluster. It boots -nodes noded
// processes over the TCP transport, drives the mixed workload against
// them, and injects the paper's fault model mid-load on a seeded,
// reproducible schedule: SIGKILL a victim (no shutdown path runs),
// restart it over the same -data-dir (disk recovery + rejoin), and
// start a fresh `-members none` process that must be adopted through
// the joining mechanism (Algorithm 3.3) over real sockets. The report
// gains churn.* series — recovery time, joiner adoption time, the
// largest client-observed availability gap, and the acked-write
// survival count — so the live numbers line up against the E14 simnet
// grid (EXPERIMENTS.md).
//
// Write survival is checked per key with a single writer per key and a
// monotone per-key sequence embedded in the value ("c<seq>"): after the
// load stops and in-flight commands settle, a sync-read of every key
// that had at least one acknowledged write must return a sequence >= the
// last acknowledged one. A lower sequence or a missing register means an
// acknowledged write vanished — the failover-path loss this harness
// exists to flush out. (An unacknowledged write may legitimately land
// late and win; the settle window plus round-ordered application makes
// that a non-issue in practice, and the check errs toward reporting it.)

// churnEvent is one kill/restart cycle of the seeded schedule.
type churnEvent struct {
	at           time.Duration // offset from measure start
	victim       int           // index into the initial nodes
	restartDelay time.Duration
}

// churnPlan is the full seeded schedule, derived from -seed alone so a
// run is reproducible given the same flags.
type churnPlan struct {
	events []churnEvent
	joinAt time.Duration // offset from measure start; < 0 disables
}

func planChurn(cfg config) churnPlan {
	rng := rand.New(rand.NewSource(cfg.seed * 1627))
	var p churnPlan
	// Kills land in the first 60% of the measured window, evenly
	// striped so sequential recovery cycles don't pile up.
	for k := 0; k < cfg.churnKills; k++ {
		lo := 0.15 + 0.6*float64(k)/float64(cfg.churnKills)
		frac := lo + 0.1*rng.Float64()
		p.events = append(p.events, churnEvent{
			at:           time.Duration(frac * float64(cfg.duration)),
			victim:       rng.Intn(cfg.nodes),
			restartDelay: 300*time.Millisecond + time.Duration(rng.Int63n(int64(500*time.Millisecond))),
		})
	}
	p.joinAt = -1
	if cfg.churnJoin {
		// The joiner starts in the back half, after the kill storm, so
		// adoption is measured against a reconfiguring-but-stable view.
		p.joinAt = time.Duration((0.55 + 0.1*rng.Float64()) * float64(cfg.duration))
	}
	return p
}

// nodeProc is one supervised noded process.
type nodeProc struct {
	id               int
	trAddr, httpAddr string
	dataDir          string
	cmd              *exec.Cmd
}

// freeAddrs grabs n distinct ephemeral 127.0.0.1 ports. All listeners
// stay open until every port is collected so no address repeats.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// supervisor owns the noded processes of a churn run.
type supervisor struct {
	cfg     config
	book    string // full address book, joiner included
	members string // initial configuration "1,...,N"
	nodes   []*nodeProc
	joiner  *nodeProc
}

func newSupervisor(cfg config, dataRoot string) (*supervisor, error) {
	addrs, err := freeAddrs(2 * (cfg.nodes + 1))
	if err != nil {
		return nil, err
	}
	s := &supervisor{cfg: cfg}
	var book, members []string
	mk := func(i int) *nodeProc {
		n := &nodeProc{
			id:       i + 1,
			trAddr:   addrs[2*i],
			httpAddr: addrs[2*i+1],
			dataDir:  filepath.Join(dataRoot, fmt.Sprintf("node-%d", i+1)),
		}
		book = append(book, fmt.Sprintf("%d=%s", n.id, n.trAddr))
		return n
	}
	for i := 0; i < cfg.nodes; i++ {
		n := mk(i)
		members = append(members, strconv.Itoa(n.id))
		s.nodes = append(s.nodes, n)
	}
	// The joiner's transport address is in every node's book from the
	// start (the book is boot-time fixed), but its id is outside the
	// initial configuration: it must earn participation via Algorithm
	// 3.3, not via -members.
	s.joiner = mk(cfg.nodes)
	s.book = strings.Join(book, ",")
	s.members = strings.Join(members, ",")
	return s, nil
}

// start launches (or relaunches) one node. memberArg "" means the
// initial configuration; "none" boots the process as a joiner.
func (s *supervisor) start(n *nodeProc, memberArg string) error {
	if memberArg == "" {
		memberArg = s.members
	}
	args := []string{
		"-id", strconv.Itoa(n.id),
		"-peers", s.book,
		"-http", n.httpAddr,
		"-members", memberArg,
		"-shards", strconv.Itoa(s.cfg.shards),
		"-batch", strconv.Itoa(s.cfg.batch),
		"-window", strconv.Itoa(s.cfg.window),
		"-data-dir", n.dataDir,
		"-fsync", "always",
		"-seed", strconv.FormatInt(s.cfg.seed+int64(n.id), 10),
	}
	if memberArg == "none" && s.cfg.joinTimeout > 0 {
		args = append(args, "-join-timeout", s.cfg.joinTimeout.String())
	}
	cmd := exec.Command(s.cfg.noded, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting noded %d: %w", n.id, err)
	}
	n.cmd = cmd
	return nil
}

// kill SIGKILLs the process (no shutdown path) and reaps it.
func (n *nodeProc) kill() {
	if n.cmd == nil || n.cmd.Process == nil {
		return
	}
	n.cmd.Process.Signal(syscall.SIGKILL)
	n.cmd.Wait()
	n.cmd = nil
}

func (s *supervisor) killAll() {
	for _, n := range s.nodes {
		n.kill()
	}
	s.joiner.kill()
}

// waitOne blocks until the node's own endpoint reports serving.
func waitOne(ctx context.Context, n *nodeProc, shards int) error {
	c, err := client.New([]string{n.httpAddr}, client.WithShards(shards))
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.WaitServing(ctx, 0)
	return err
}

// churnMeasure is what the fault-injection timeline records.
type churnMeasure struct {
	kills       int
	recoveryMax time.Duration // SIGKILL -> restarted process serving again
	joinAdopt   time.Duration // joiner exec -> serving (adopted)
	joined      bool
	note        string
}

// churnResult extends the workload result with survival bookkeeping.
type churnResult struct {
	result
	okAt  []time.Time    // completion times of successful ops (gap series)
	acked map[string]int // key -> highest acknowledged write sequence
}

// churnDrive is the churn-mode workload: like drive, but each key has
// exactly one writer (keys are striped over workers) and writes carry a
// monotone per-key sequence, which is what makes acked-write survival
// checkable after the run.
func churnDrive(ctx context.Context, c *client.Client, cfg config) churnResult {
	keys := make([]string, 0, cfg.shards*cfg.keys)
	for _, group := range shard.NamesPerShard(cfg.shards, cfg.keys) {
		keys = append(keys, group...)
	}
	res := churnResult{acked: make(map[string]int)}
	var mu sync.Mutex
	start := time.Now()
	measureStart := start.Add(cfg.warmup)
	deadline := measureStart.Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		var own []string
		for i := w; i < len(keys); i += cfg.clients {
			own = append(own, keys[i])
		}
		if len(own) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, own []string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			seqs := make(map[string]int, len(own))
			acked := make(map[string]int, len(own))
			var write, sread classStats
			var okAt []time.Time
			var lastErr error
			for ctx.Err() == nil && time.Now().Before(deadline) {
				key := own[rng.Intn(len(own))]
				isWrite := rng.Float64() < cfg.ratio
				t0 := time.Now()
				var err error
				if isWrite {
					seqs[key]++
					_, err = c.Write(ctx, key, fmt.Sprintf("c%d", seqs[key]))
					if err == nil {
						acked[key] = seqs[key]
					}
				} else {
					_, err = c.SyncRead(ctx, key)
				}
				done := time.Now()
				lat := done.Sub(t0)
				if done.Before(measureStart) {
					if err != nil {
						lastErr = err
					}
					continue
				}
				st := &sread
				if isWrite {
					st = &write
				}
				if err != nil {
					st.errs++
					lastErr = err
					continue
				}
				st.ops++
				st.latMS = append(st.latMS, float64(lat)/float64(time.Millisecond))
				okAt = append(okAt, done)
			}
			mu.Lock()
			res.write.merge(write)
			res.sread.merge(sread)
			res.okAt = append(res.okAt, okAt...)
			for k, s := range acked {
				res.acked[k] = s // single writer per key: no conflicts
			}
			if lastErr != nil {
				res.lastErr = lastErr
			}
			mu.Unlock()
		}(w, own)
	}
	wg.Wait()
	res.elapsed = time.Since(measureStart)
	if d := deadline.Sub(measureStart); res.elapsed > d && ctx.Err() == nil {
		res.elapsed = d
	}
	return res
}

// maxGap returns the largest client-observed availability gap: the
// longest stretch of the measured window [from, to] with no successful
// operation completion.
func maxGap(okAt []time.Time, from, to time.Time) time.Duration {
	sort.Slice(okAt, func(i, j int) bool { return okAt[i].Before(okAt[j]) })
	var max time.Duration
	prev := from
	for _, t := range okAt {
		if t.After(to) {
			break
		}
		if g := t.Sub(prev); g > max {
			max = g
		}
		prev = t
	}
	if g := to.Sub(prev); g > max {
		max = g
	}
	return max
}

// verifySurvival sync-reads every key that had an acknowledged write
// and counts the ones whose final value regressed below the last
// acknowledged sequence (or vanished outright).
func verifySurvival(ctx context.Context, c *client.Client, acked map[string]int) (lost int, detail string) {
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		want := acked[key]
		var got string
		var found bool
		// A node mid-recovery can fail a first read; retry briefly
		// before declaring the write lost.
		for attempt := 0; attempt < 5; attempt++ {
			r, err := c.SyncRead(ctx, key)
			if err == nil {
				got, found = r.Value, r.Found
				break
			}
			if ctx.Err() != nil {
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		seq := -1
		if found {
			if n, err := strconv.Atoi(strings.TrimPrefix(got, "c")); err == nil {
				seq = n
			}
		}
		if seq < want {
			lost++
			if detail == "" {
				detail = fmt.Sprintf("first loss: %s acked c%d, read %q", key, want, got)
			}
		}
	}
	return lost, detail
}

// runChurn is the churn-mode main: boot cluster, drive load, inject the
// seeded kill/restart + join schedule, verify survival, emit one report.
func runChurn(ctx context.Context, cfg config) error {
	dataRoot := cfg.dataRoot
	if dataRoot == "" {
		dir, err := os.MkdirTemp("", "nodeload-churn-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		dataRoot = dir
	}
	sup, err := newSupervisor(cfg, dataRoot)
	if err != nil {
		return err
	}
	defer sup.killAll()
	for _, n := range sup.nodes {
		if err := sup.start(n, ""); err != nil {
			return err
		}
	}
	for _, n := range sup.nodes {
		cfg.addrs = append(cfg.addrs, "http://"+n.httpAddr)
	}
	plan := planChurn(cfg)
	fmt.Fprintf(os.Stderr, "nodeload: churn plan (seed %d): ", cfg.seed)
	for _, e := range plan.events {
		fmt.Fprintf(os.Stderr, "[kill node %d at +%v, restart +%v] ", sup.nodes[e.victim].id, e.at.Round(time.Millisecond), e.restartDelay.Round(time.Millisecond))
	}
	if plan.joinAt >= 0 {
		fmt.Fprintf(os.Stderr, "[join node %d at +%v]", sup.joiner.id, plan.joinAt.Round(time.Millisecond))
	}
	fmt.Fprintln(os.Stderr)

	c, err := client.New(cfg.addrs,
		client.WithShards(cfg.shards), client.WithTimeout(cfg.timeout),
		client.WithBackoffSeed(cfg.seed))
	if err != nil {
		return err
	}
	defer c.Close()
	if cfg.wait > 0 {
		wctx, cancel := context.WithTimeout(ctx, cfg.wait)
		err := waitCluster(wctx, cfg)
		cancel()
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "nodeload: churn: %d nodes × %d shard(s), %d clients × %v (+%v warmup), %d kill(s), join=%v\n",
		cfg.nodes, cfg.shards, cfg.clients, cfg.duration, cfg.warmup, cfg.churnKills, cfg.churnJoin)

	measureStart := time.Now().Add(cfg.warmup)
	resCh := make(chan churnResult, 1)
	go func() { resCh <- churnDrive(ctx, c, cfg) }()

	// Fault-injection timeline. Sequential by design: each recovery is
	// measured without the next fault overlapping it.
	var m churnMeasure
	sleepUntil := func(at time.Duration) bool {
		d := time.Until(measureStart.Add(at))
		if d <= 0 {
			return ctx.Err() == nil
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}
	for _, e := range plan.events {
		if !sleepUntil(e.at) {
			break
		}
		victim := sup.nodes[e.victim]
		killed := time.Now()
		fmt.Fprintf(os.Stderr, "nodeload: churn: SIGKILL node %d\n", victim.id)
		victim.kill()
		m.kills++
		select {
		case <-ctx.Done():
		case <-time.After(e.restartDelay):
		}
		if ctx.Err() != nil {
			break
		}
		if err := sup.start(victim, ""); err != nil {
			m.note = err.Error()
			break
		}
		wctx, cancel := context.WithTimeout(ctx, cfg.wait)
		err := waitOne(wctx, victim, cfg.shards)
		cancel()
		if err != nil {
			m.note = fmt.Sprintf("node %d never re-served: %v", victim.id, err)
			break
		}
		rec := time.Since(killed)
		if rec > m.recoveryMax {
			m.recoveryMax = rec
		}
		fmt.Fprintf(os.Stderr, "nodeload: churn: node %d serving again %v after SIGKILL\n", victim.id, rec.Round(time.Millisecond))
	}
	if plan.joinAt >= 0 && ctx.Err() == nil && m.note == "" {
		sleepUntil(plan.joinAt)
		if ctx.Err() == nil {
			started := time.Now()
			fmt.Fprintf(os.Stderr, "nodeload: churn: starting joiner node %d (-members none)\n", sup.joiner.id)
			if err := sup.start(sup.joiner, "none"); err != nil {
				m.note = err.Error()
			} else {
				wctx, cancel := context.WithTimeout(ctx, cfg.wait)
				err := waitOne(wctx, sup.joiner, cfg.shards)
				cancel()
				if err != nil {
					m.note = fmt.Sprintf("joiner never served: %v", err)
				} else {
					m.joined = true
					m.joinAdopt = time.Since(started)
					fmt.Fprintf(os.Stderr, "nodeload: churn: joiner adopted and serving after %v\n", m.joinAdopt.Round(time.Millisecond))
				}
			}
		}
	}

	res := <-resCh
	truncated := ctx.Err() != nil

	// Settle: let commands still queued inside the cluster drain
	// through their rounds before the survival reads.
	lost, detail := 0, ""
	if !truncated {
		time.Sleep(1500 * time.Millisecond)
		vctx, cancel := context.WithTimeout(context.Background(), cfg.wait)
		lost, detail = verifySurvival(vctx, c, res.acked)
		cancel()
	}

	// The joiner's endpoint joins the scrape set so its repro_join_*
	// families land in the report.
	if m.joined {
		cfg.addrs = append(cfg.addrs, "http://"+sup.joiner.httpAddr)
	}
	srv := scrapeCluster(cfg)
	rep := buildReport(cfg, res.result, srv)
	gapTo := measureStart.Add(cfg.duration)
	if truncated {
		gapTo = time.Now()
	}
	note := fmt.Sprintf("%d nodes, %d kill(s), join=%v, seed %d", cfg.nodes, m.kills, cfg.churnJoin, cfg.seed)
	if m.note != "" {
		note += "; " + m.note
	}
	addRow(rep, cfg, "churn.kills", "count", float64(m.kills), m.kills == cfg.churnKills && m.note == "", note)
	addRow(rep, cfg, "churn.recovery_time_ms", "ms", float64(m.recoveryMax)/float64(time.Millisecond), m.kills > 0 && m.note == "", "max over kill/restart cycles: SIGKILL -> serving again")
	addRow(rep, cfg, "churn.join_adopt_ms", "ms", float64(m.joinAdopt)/float64(time.Millisecond), m.joined || !cfg.churnJoin, "joiner exec -> adopted + serving")
	addRow(rep, cfg, "churn.availability_gap_max_ms", "ms", float64(maxGap(res.okAt, measureStart, gapTo))/float64(time.Millisecond), len(res.okAt) > 0, "longest stretch with no successful op")
	addRow(rep, cfg, "churn.acked_keys", "count", float64(len(res.acked)), len(res.acked) > 0, "")
	addRow(rep, cfg, "churn.lost_acked_writes", "count", float64(lost), !truncated && lost == 0, detail)
	addRow(rep, cfg, "run.truncated", "bool", b2f(truncated), !truncated, "")
	if err := emit(rep, cfg.format, cfg.out); err != nil {
		return err
	}
	switch {
	case truncated:
		return fmt.Errorf("interrupted: partial report emitted (truncated=true)")
	case m.note != "":
		return fmt.Errorf("churn schedule incomplete: %s", m.note)
	case lost > 0:
		return fmt.Errorf("%d acked write(s) lost (%s)", lost, detail)
	case !m.joined && cfg.churnJoin:
		return fmt.Errorf("joiner was never adopted")
	}
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
