package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apitest"
	"repro/pkg/client"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addrs", "127.0.0.1:8141, http://h:2,", "-clients", "3",
		"-duration", "250ms", "-ratio", "0.8", "-shards", "2", "-format", "csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.addrs) != 2 || cfg.clients != 3 || cfg.duration != 250*time.Millisecond ||
		cfg.ratio != 0.8 || cfg.shards != 2 || cfg.format != "csv" {
		t.Fatalf("parsed %+v", cfg)
	}
	bad := [][]string{
		{},                                   // missing -addrs
		{"-addrs", "h:1", "-clients", "0"},   // no workers
		{"-addrs", "h:1", "-ratio", "1.5"},   // ratio out of range
		{"-addrs", "h:1", "-ratio", "-0.1"},  // ratio out of range
		{"-addrs", "h:1", "-duration", "0s"}, // no duration
		{"-addrs", "h:1", "-shards", "0"},    // bad shard count
		{"-addrs", "h:1", "-keys", "0"},      // no keys
		{"-addrs", "h:1", "-format", "xml"},  // unknown format
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{50, 5}, {95, 10}, {99, 10}, {100, 10}, {10, 1},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("p%g = %g, want %g", c.p, got, c.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty sample must report 0")
	}
	if got := percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton p99 = %g", got)
	}
}

// TestDriveMixedWorkload: the workload loop spreads a write/sync-read
// mix across every shard and both endpoints (fake cluster from
// internal/apitest), and the report carries nonzero throughput and
// parseable percentiles for both classes.
func TestDriveMixedWorkload(t *testing.T) {
	const shards = 2
	nodes := apitest.Cluster(2, shards)
	var addrs []string
	for _, n := range nodes {
		srv := httptest.NewServer(n.Handler())
		defer srv.Close()
		addrs = append(addrs, srv.URL)
	}
	cfg, err := parseFlags([]string{
		"-addrs", strings.Join(addrs, ","), "-clients", "4",
		"-duration", "300ms", "-ratio", "0.5", "-shards", "2", "-seed", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.New(cfg.addrs, client.WithShards(cfg.shards), client.WithTimeout(cfg.timeout))
	if err != nil {
		t.Fatal(err)
	}
	res := drive(context.Background(), c, cfg)
	if res.write.ops == 0 || res.sread.ops == 0 {
		t.Fatalf("mixed workload ran no ops: %+v / %+v (last err %v)", res.write, res.sread, res.lastErr)
	}
	if res.write.errs != 0 || res.sread.errs != 0 {
		t.Fatalf("errors against healthy fakes: %+v / %+v (last err %v)", res.write, res.sread, res.lastErr)
	}
	for _, n := range nodes {
		if n.Hits.Load() == 0 {
			t.Fatal("an endpoint saw no traffic: shard routing never spread the load")
		}
	}

	rep := buildReport(cfg, res, nil)
	series := map[string]float64{}
	valid := map[string]bool{}
	for _, s := range rep.Summary {
		series[s.Series] = s.Mean
		valid[s.Series] = s.Valid == s.Repeats
	}
	for _, key := range []string{
		"write.throughput_ops_s", "write.p50_ms", "write.p95_ms", "write.p99_ms",
		"sync-read.throughput_ops_s", "sync-read.p50_ms", "sync-read.p95_ms", "sync-read.p99_ms",
		"total.throughput_ops_s",
	} {
		v, ok := series[key]
		if !ok {
			t.Fatalf("report lacks series %q", key)
		}
		if v <= 0 || !valid[key] {
			t.Errorf("series %q = %g (valid=%v), want positive and valid", key, v, valid[key])
		}
	}
	if series["write.errors"] != 0 || series["sync-read.errors"] != 0 {
		t.Errorf("error series nonzero: %g / %g", series["write.errors"], series["sync-read.errors"])
	}
	// Percentiles are ordered.
	if series["write.p50_ms"] > series["write.p95_ms"] || series["write.p95_ms"] > series["write.p99_ms"] {
		t.Errorf("write percentiles unordered: %g / %g / %g",
			series["write.p50_ms"], series["write.p95_ms"], series["write.p99_ms"])
	}
}

// TestScrapeClusterFoldIn: scrapeCluster sums counter families across
// endpoints, tolerates an endpoint without /metrics, and buildReport
// folds the totals in as server.* series.
func TestScrapeClusterFoldIn(t *testing.T) {
	page := "# HELP repro_shard_ops_total Operations routed per shard.\n" +
		"# TYPE repro_shard_ops_total counter\n" +
		"repro_shard_ops_total{op=\"write\",shard=\"0\"} 3\n" +
		"repro_shard_ops_total{op=\"read\",shard=\"1\"} 2\n" +
		"# HELP repro_http_requests_total HTTP requests served.\n" +
		"# TYPE repro_http_requests_total counter\n" +
		"repro_http_requests_total{code=\"200\",route=\"registers\"} 7\n"
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, page)
	}))
	defer good.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	defer dead.Close()

	cfg := config{
		addrs:   []string{good.URL, good.URL, dead.URL},
		clients: 1, seed: 1, timeout: 2 * time.Second,
	}
	srv := scrapeCluster(cfg)
	if srv.scraped != 2 {
		t.Fatalf("scraped = %d, want 2 (dead endpoint skipped)", srv.scraped)
	}
	if got := srv.totals["repro_shard_ops_total"]; got != 10 {
		t.Errorf("shard ops total = %g, want 10 (5 per good endpoint)", got)
	}
	if got := srv.totals["repro_http_requests_total"]; got != 14 {
		t.Errorf("http requests total = %g, want 14", got)
	}

	rep := buildReport(cfg, result{elapsed: time.Second, write: classStats{ops: 1, latMS: []float64{1}}}, srv)
	series := map[string]float64{}
	for _, s := range rep.Summary {
		series[s.Series] = s.Mean
	}
	if series["server.shard_ops"] != 10 || series["server.http_requests"] != 14 {
		t.Errorf("server series not folded in: %v / %v",
			series["server.shard_ops"], series["server.http_requests"])
	}
	if _, ok := series["server.storage_appends"]; !ok {
		t.Error("absent family should still emit a zero-valued server row")
	}
}

// TestBuildReportEmptyRun: a run that completed nothing marks its
// percentile and throughput rows invalid instead of fabricating zeros
// as valid measurements.
func TestBuildReportEmptyRun(t *testing.T) {
	cfg := config{clients: 2, seed: 1, ratio: 1, shards: 1, addrs: []string{"x"}}
	rep := buildReport(cfg, result{elapsed: time.Second, write: classStats{errs: 5}}, nil)
	for _, s := range rep.Summary {
		switch {
		case strings.HasSuffix(s.Series, ".errors"):
			if s.Valid != 1 {
				t.Errorf("%s should stay valid", s.Series)
			}
		case strings.HasPrefix(s.Series, "write.") || strings.HasPrefix(s.Series, "total."):
			if s.Valid != 0 {
				t.Errorf("%s valid=%d, want 0 on an empty run", s.Series, s.Valid)
			}
		}
	}
}
