package main

import (
	"reflect"
	"testing"
)

func TestParseSizesValid(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"4", []int{4}},
		{"4,8,16,24", []int{4, 8, 16, 24}},
		{" 4 , 8 ", []int{4, 8}},
		{"8,4", []int{8, 4}},            // order preserved
		{"4,8,4,8,16", []int{4, 8, 16}}, // duplicates dropped
		{"1,4", []int{1, 4}},            // 1 is legal (E11 shard counts; others clamp to MinSize)
		{"", nil},                       // empty = per-experiment defaults
		{"   ", nil},                    // blank = per-experiment defaults
	}
	for _, c := range cases {
		got, err := parseSizes(c.in)
		if err != nil {
			t.Errorf("parseSizes(%q): unexpected error %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseSizes(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseSizesInvalid(t *testing.T) {
	for _, in := range []string{"x", "4,x", "4,,8", "0", "-3", "3.5"} {
		if got, err := parseSizes(in); err == nil {
			t.Errorf("parseSizes(%q) = %v, want error", in, got)
		}
	}
}

func TestParseOnly(t *testing.T) {
	if got := parseOnly(""); got != nil {
		t.Errorf("parseOnly(\"\") = %v, want nil", got)
	}
	if got := parseOnly("   "); got != nil {
		t.Errorf("parseOnly(blank) = %v, want nil", got)
	}
	got := parseOnly("e2, E8 ,e2")
	want := map[string]bool{"E2": true, "E8": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseOnly(\"e2, E8 ,e2\") = %v, want %v", got, want)
	}
}

func TestEmitStreamUnknownFormat(t *testing.T) {
	if err := emitStream(nil, nil, "xml"); err == nil {
		t.Error("emitStream with unknown format: want error")
	}
}
