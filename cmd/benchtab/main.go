// Command benchtab regenerates the experiment tables (E1–E12, DESIGN.md
// §6) through the parallel engine and emits them in the format recorded
// in EXPERIMENTS.md, as CSV, or as JSON.
//
// Usage:
//
//	benchtab [-seed N] [-sizes 4,8,16,24] [-only E2,E8]
//	         [-repeats R] [-parallel W] [-format table|csv|json] [-out DIR]
//
// The (experiment × size × repeat) grid is fanned out over W workers
// (default: all CPUs); every cell derives its own seed from -seed and its
// grid coordinates, so the output is byte-identical for any -parallel
// value. With -out DIR the results are written to files in DIR
// (cells.csv + summary.csv, results.json, or results.txt depending on
// -format) instead of stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	_ "repro/internal/experiments" // registers E1–E12
	"repro/internal/experiments/engine"
)

func main() {
	seed := flag.Int64("seed", 42, "base random seed")
	sizesFlag := flag.String("sizes", "", "comma-separated N sweep (empty = per-experiment defaults)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E2,E8); empty = all")
	repeats := flag.Int("repeats", 1, "repeats per (experiment, size) cell")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker pool size (results do not depend on it)")
	format := flag.String("format", "table", "output format: table, csv or json")
	outDir := flag.String("out", "", "write results to files in DIR instead of stdout")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	rep, err := engine.Run(engine.Config{
		Seed:    *seed,
		Sizes:   sizes,
		Repeats: *repeats,
		Workers: *parallel,
		Only:    parseOnly(*only),
	})
	if err != nil {
		fatal(err)
	}
	if err := emit(rep, *format, *outDir); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}

// emit writes the report to stdout, or to files under dir when non-empty.
func emit(rep *engine.Report, format, dir string) error {
	if dir == "" {
		return emitStream(os.Stdout, rep, format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var files []string
	switch format {
	case "csv":
		files = []string{"cells.csv", "summary.csv"}
	case "json":
		files = []string{"results.json"}
	case "table":
		files = []string{"results.txt"}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	write := func(name string, fn func(io.Writer, *engine.Report) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", filepath.Join(dir, name))
		return nil
	}
	switch format {
	case "csv":
		if err := write(files[0], engine.WriteCellsCSV); err != nil {
			return err
		}
		return write(files[1], engine.WriteSummaryCSV)
	case "json":
		return write(files[0], engine.WriteJSON)
	default:
		return write(files[0], engine.WriteTable)
	}
}

// emitStream writes the report to one stream: for csv, the per-cell
// table, a blank line, then the grouped summary.
func emitStream(w io.Writer, rep *engine.Report, format string) error {
	switch format {
	case "csv":
		if err := engine.WriteCellsCSV(w, rep); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		return engine.WriteSummaryCSV(w, rep)
	case "json":
		return engine.WriteJSON(w, rep)
	case "table":
		return engine.WriteTable(w, rep)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

// parseSizes parses a comma-separated N sweep. Sizes must be ≥1 (1 is
// meaningful for E11/E12, whose N is a shard count / batch bound;
// cluster-size experiments clamp to their descriptor's MinSize);
// duplicates are dropped (preserving order). An empty string yields
// nil, meaning per-experiment defaults.
func parseSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	seen := map[int]bool{}
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out, nil
}

// parseOnly parses the -only experiment filter: nil for "all", otherwise
// a set of upper-cased ids.
func parseOnly(s string) map[string]bool {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	out := map[string]bool{}
	for _, p := range strings.Split(s, ",") {
		out[strings.ToUpper(strings.TrimSpace(p))] = true
	}
	return out
}
