// Command benchtab regenerates the full experiment tables (E1–E10,
// DESIGN.md §6) at the complete size sweep and prints them in the format
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchtab [-seed N] [-sizes 4,8,16,24] [-only E2,E8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "base random seed")
	sizesFlag := flag.String("sizes", "4,8,16,24", "comma-separated N sweep")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E2,E8); empty = all")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	wanted := parseOnly(*only)

	run := func(id string, fn func() []workload.Series) {
		if wanted != nil && !wanted[id] {
			return
		}
		fmt.Printf("=== %s ===\n", id)
		for _, s := range fn() {
			fmt.Println(s.Render())
		}
	}

	run("E1", func() []workload.Series {
		return []workload.Series{experiments.E1DelicateLatency(*seed, sizes)}
	})
	run("E2", func() []workload.Series {
		return []workload.Series{experiments.E2BruteForceConvergence(*seed, sizes)}
	})
	run("E3", func() []workload.Series {
		return []workload.Series{experiments.E3SpuriousTriggers(*seed, sizes)}
	})
	run("E4", func() []workload.Series { return experiments.E4LabelCreations(*seed, sizes) })
	run("E5", func() []workload.Series {
		return []workload.Series{experiments.E5CounterIncrement(*seed, sizes)}
	})
	run("E6", func() []workload.Series {
		return []workload.Series{experiments.E6VSReconfiguration(*seed, clampMin(sizes, 5))}
	})
	run("E7", func() []workload.Series {
		return []workload.Series{experiments.E7JoinLatency(*seed, sizes)}
	})
	run("E8", func() []workload.Series { return experiments.E8BaselineComparison(*seed, sizes) })
	run("E9", func() []workload.Series {
		return []workload.Series{experiments.E9SharedMemory(*seed, sizes)}
	})
	run("E10", func() []workload.Series { return experiments.E10Ablation(*seed, sizes) })
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseOnly(s string) map[string]bool {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	out := map[string]bool{}
	for _, p := range strings.Split(s, ",") {
		out[strings.ToUpper(strings.TrimSpace(p))] = true
	}
	return out
}

// clampMin raises every size below min to min (E6 needs ≥5 processors so a
// non-coordinator member can crash while a majority survives).
func clampMin(sizes []int, min int) []int {
	out := make([]int, 0, len(sizes))
	for _, n := range sizes {
		if n < min {
			n = min
		}
		out = append(out, n)
	}
	return out
}
