package main

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/sim"
)

// TestScenarioSmoke drives every recsim scenario at small N through the
// factored run() entry point — the command previously had zero tests.
// Each scenario must complete its timeline without error on the
// deterministic simulator.
func TestScenarioSmoke(t *testing.T) {
	cases := []struct {
		scenario string
		n        int
		budget   sim.Time
	}{
		{"bootstrap", 4, 200_000},
		{"coldstart", 4, 400_000},
		{"corrupt", 4, 400_000},
		{"crash", 5, 400_000},
		{"join", 4, 400_000},
		{"churn", 5, 60_000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			t.Parallel()
			if err := run(io.Discard, tc.scenario, tc.n, 1, tc.budget); err != nil {
				t.Fatalf("run(%q, n=%d): %v", tc.scenario, tc.n, err)
			}
		})
	}
}

func TestUnknownScenarioRejected(t *testing.T) {
	if err := run(io.Discard, "nope", 4, 1, 1000); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestScenarioDeterminism: the same (scenario, n, seed) must print the
// same timeline byte for byte — run() is a pure function of its
// arguments on the deterministic simulator.
func TestScenarioDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "corrupt", 4, 42, 400_000); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "corrupt", 4, 42, 400_000); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a.String(), b.String())
	}
}
