// Command recsim runs interactive scenarios of the self-stabilizing
// reconfiguration scheme on the deterministic simulator and prints an
// event timeline — convergence, reconfigurations, joins, recoveries.
//
// Usage:
//
//	recsim -scenario bootstrap|coldstart|corrupt|crash|join|churn \
//	       [-n 5] [-seed 1] [-ticks 60000]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "corrupt", "bootstrap|coldstart|corrupt|crash|join|churn")
	n := flag.Int("n", 5, "number of processors")
	seed := flag.Int64("seed", 1, "random seed")
	ticks := flag.Int64("ticks", 120_000, "virtual-time budget")
	flag.Parse()

	if err := run(os.Stdout, *scenario, *n, *seed, sim.Time(*ticks)); err != nil {
		fmt.Fprintln(os.Stderr, "recsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, scenario string, n int, seed int64, budget sim.Time) error {
	opts := core.DefaultClusterOptions(seed)
	var (
		c   *core.Cluster
		err error
	)
	if scenario == "coldstart" {
		c, err = core.ColdStartCluster(n, opts)
	} else {
		c, err = core.BootstrapCluster(n, opts)
	}
	if err != nil {
		return err
	}

	report := func(phase string) {
		cfg, ok := c.ConvergedConfig()
		fmt.Fprintf(w, "t=%-8d %-22s converged=%-5v config=%v alive=%v\n",
			c.Sched.Now(), phase, ok, cfg, c.Alive())
	}

	report("start")
	switch scenario {
	case "bootstrap", "coldstart":
		d, ok := c.RunUntilConverged(budget)
		fmt.Fprintf(w, "t=%-8d convergence after %d ticks (ok=%v)\n", c.Sched.Now(), d, ok)
	case "corrupt":
		c.RunFor(800)
		report("pre-fault")
		fmt.Fprintln(w, "--- injecting transient fault: all layers randomized, stale packets ---")
		d, ok := workload.MeasureConvergence(c, 4*n, budget)
		fmt.Fprintf(w, "t=%-8d recovered after %d ticks (ok=%v)\n", c.Sched.Now(), d, ok)
	case "crash":
		c.RunFor(800)
		report("pre-crash")
		for i := n; i > n/2; i-- {
			c.Crash(ids.ID(i))
		}
		fmt.Fprintf(w, "--- crashed processors %d..%d (majority of the configuration) ---\n", n/2+1, n)
		start := c.Sched.Now()
		ok := c.Sched.RunWhile(func() bool {
			cfg, conv := c.ConvergedConfig()
			if !conv {
				return true
			}
			// Recovered only once the installed configuration has a
			// live majority again.
			return cfg.Intersect(c.Alive()).Size() < cfg.MajoritySize()
		}, 20_000_000)
		fmt.Fprintf(w, "t=%-8d reconfigured after %d ticks (ok=%v)\n",
			c.Sched.Now(), c.Sched.Now()-start, ok)
	case "join":
		c.RunFor(800)
		report("pre-join")
		j, err := c.AddJoiner(ids.ID(n + 10))
		if err != nil {
			return err
		}
		ok := c.Sched.RunWhile(func() bool { return !j.IsParticipant() }, 10_000_000)
		fmt.Fprintf(w, "t=%-8d joiner p%d participant=%v\n", c.Sched.Now(), n+10, ok)
	case "churn":
		churn := workload.NewChurn(c, workload.ChurnOptions{
			Interval: 2000, Joins: true, Crashes: true, MinAlive: 3, MaxEvents: 8,
		})
		churn.Start()
		c.RunFor(budget)
		churn.Stop()
		fmt.Fprintf(w, "churn executed: joined=%v crashed=%v\n", churn.Joined, churn.Crashed)
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	report("end")

	fmt.Fprintln(w, "--- per-node metrics ---")
	c.EachAlive(func(node *core.Node) {
		m := node.SA.Metrics()
		fmt.Fprintf(w, "%-4v resets=%-3d bruteInstalls=%-3d delicateInstalls=%-3d transitions=%-4d adoptions=%-4d\n",
			node.Self(), m.Resets, m.BruteInstalls, m.DelicateInstalls, m.PhaseTransitions, m.Adoptions)
	})
	return nil
}
